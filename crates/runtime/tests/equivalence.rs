//! The batching analogue of the tensor crate's thread-count determinism
//! property: serving `N` streams through the batched multi-stream runtime
//! must produce **bit-identical** per-stream score sequences — and identical
//! final adaptive state — to running each stream alone through the legacy
//! single-stream path (`MissionSystem` + `ContinuousAdapter::observe`),
//! at batch sizes B ∈ {1, 4, 16}.
//!
//! The streams carry a mid-run trend shift so the continuous-adaptation
//! loop actually fires (token updates, possibly restructures) during the
//! comparison — per-stream isolation is load-bearing, not vacuous.
//!
//! The sharded legs extend the same chain one layer up: `ShardedRuntime` at
//! shard counts {1, 2, 4} must be bit-identical per stream — scores, final
//! adapted token tables, replacement counts — to the single-threaded
//! `MultiStreamRuntime` (itself proven ≡ the legacy path above), under both
//! forced-Scalar and forced-SIMD backends, across the same mid-run trend
//! shift, with the pipelined `run()` path exercised.

use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{EngineSpec, MultiStreamRuntime, RuntimeConfig, ShardedConfig, ShardedRuntime};
use akg_tensor::{Backend, Precision};
use std::sync::{Arc, Mutex, MutexGuard};

const FRAMES_PER_STREAM: usize = 48;
const SHIFT_AT: usize = 24;

/// `MissionSystem::build` applies its config's backend process-wide, and the
/// suite now runs under both `Auto` and forced-`Scalar` — serialize the
/// tests so a concurrent build can never flip the backend mid-comparison
/// (the `BACKEND_LOCK` discipline of `tensor/tests/proptest_kernels.rs`).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn dataset() -> Arc<SyntheticUcfCrime> {
    Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(77),
    ))
}

fn adapt_cfg(stream: usize) -> AdaptConfig {
    AdaptConfig {
        n_window: 16,
        lag: 8,
        interval: 8,
        min_k: 1,
        max_k: 4,
        seed: stream as u64,
        ..AdaptConfig::default()
    }
}

fn system_cfg(backend: Backend, precision: Precision) -> SystemConfig {
    SystemConfig { seed: 5, backend, precision, ..SystemConfig::default() }
}

fn frame_seed(stream: usize) -> u64 {
    0xBEEF ^ (stream as u64 * 101)
}

fn stream_seed(stream: usize) -> u64 {
    1000 + stream as u64
}

/// The legacy path: one single-tenant `MissionSystem` per stream, frames
/// observed one at a time.
fn run_standalone(
    ds: &Arc<SyntheticUcfCrime>,
    stream: usize,
    backend: Backend,
    precision: Precision,
) -> (Vec<f32>, Vec<f32>, usize) {
    let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &system_cfg(backend, precision));
    // align the stream's embedding RNG with the runtime's session seeding
    sys.session = sys.engine.new_session(frame_seed(stream));
    let mut adapter = ContinuousAdapter::new(&mut sys, adapt_cfg(stream));
    let mut source =
        AdaptationStream::new(ds.as_ref(), AnomalyClass::Stealing, 0.5, stream_seed(stream));
    let mut scores = Vec::with_capacity(FRAMES_PER_STREAM);
    for i in 0..FRAMES_PER_STREAM {
        if i == SHIFT_AT {
            source.shift_to(AnomalyClass::Robbery);
        }
        let (frame, _) = source.next_frame();
        scores.push(adapter.observe(&mut sys, &frame));
    }
    (scores, sys.session.table.to_dense_vec(), adapter.replacements())
}

struct RuntimeOutcome {
    scores: Vec<Vec<f32>>,
    tables: Vec<Vec<f32>>,
    replacements: Vec<usize>,
}

fn run_runtime(
    ds: &Arc<SyntheticUcfCrime>,
    n_streams: usize,
    max_batch: usize,
    backend: Backend,
    precision: Precision,
) -> RuntimeOutcome {
    let sys = MissionSystem::build(&[AnomalyClass::Stealing], &system_cfg(backend, precision));
    let mut rt = MultiStreamRuntime::new(sys.engine, RuntimeConfig { max_batch, batched: true });
    for s in 0..n_streams {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.5, stream_seed(s));
        rt.add_stream(source, frame_seed(s), adapt_cfg(s));
    }
    let mut scores = vec![Vec::with_capacity(FRAMES_PER_STREAM); n_streams];
    for tick in 0..FRAMES_PER_STREAM {
        if tick == SHIFT_AT {
            for s in 0..n_streams {
                rt.source_mut(s).shift_to(AnomalyClass::Robbery);
            }
        }
        for (s, score) in rt.tick().into_iter().enumerate() {
            scores[s].push(score);
        }
    }
    let tables = (0..n_streams).map(|s| rt.session(s).table.to_dense_vec()).collect();
    let replacements = (0..n_streams)
        .map(|s| {
            rt.adapt_events(s)
                .iter()
                .filter(|e| matches!(e, akg_core::adapt::AdaptEvent::NodeReplaced { .. }))
                .count()
        })
        .collect();
    RuntimeOutcome { scores, tables, replacements }
}

fn check_equivalence(n_streams: usize, max_batch: usize, backend: Backend) {
    let precision = Precision::F32;
    let _guard = lock_backend();
    let ds = dataset();
    let batched = run_runtime(&ds, n_streams, max_batch, backend, precision);
    let pristine_table =
        MissionSystem::build(&[AnomalyClass::Stealing], &system_cfg(backend, precision))
            .session
            .table
            .param()
            .to_vec();
    let mut any_adapted = false;
    for s in 0..n_streams {
        let (solo_scores, solo_table, solo_replacements) =
            run_standalone(&ds, s, backend, precision);
        assert_eq!(
            batched.scores[s], solo_scores,
            "stream {s}/{n_streams}: batched scores diverged from the legacy path"
        );
        assert_eq!(
            batched.tables[s], solo_table,
            "stream {s}/{n_streams}: final adapted token table diverged"
        );
        assert_eq!(
            batched.replacements[s], solo_replacements,
            "stream {s}: replacement counts diverged"
        );
        any_adapted |= solo_table != pristine_table;
    }
    assert!(any_adapted, "no stream adapted — the equivalence check was vacuous");
}

/// The sharded path: same streams, partitioned across `shards` worker
/// threads, with the pipelined `run()` entry point (the trend shift lands on
/// the tick boundary between the two `run` calls, exactly where the
/// single-threaded loop applies it).
fn run_sharded(
    ds: &Arc<SyntheticUcfCrime>,
    n_streams: usize,
    shards: usize,
    backend: Backend,
    precision: Precision,
) -> RuntimeOutcome {
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], system_cfg(backend, precision));
    let mut rt = ShardedRuntime::new(
        spec,
        ShardedConfig { shards, max_batch: 16, queue_depth: 2, ..ShardedConfig::default() },
    );
    for s in 0..n_streams {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.5, stream_seed(s));
        rt.add_stream(source, frame_seed(s), adapt_cfg(s));
    }
    let mut scores = rt.run(SHIFT_AT);
    for s in 0..n_streams {
        rt.source_mut(s).shift_to(AnomalyClass::Robbery);
    }
    for (s, tail) in rt.run(FRAMES_PER_STREAM - SHIFT_AT).into_iter().enumerate() {
        scores[s].extend(tail);
    }
    let snapshots = rt.stream_snapshots();
    RuntimeOutcome {
        scores,
        tables: snapshots.iter().map(|s| s.table.clone()).collect(),
        replacements: snapshots.iter().map(|s| s.replacements).collect(),
    }
}

/// The shard-equivalence contract: serving at shard counts {1, 2, 4} is
/// bit-identical per stream to the single-threaded multi-stream runtime
/// (which the legs above prove bit-identical to the legacy single-stream
/// path — so the whole chain holds by transitivity).
fn check_shard_equivalence(n_streams: usize, backend: Backend, precision: Precision) {
    let _guard = lock_backend();
    let ds = dataset();
    let reference = run_runtime(&ds, n_streams, 16, backend, precision);
    let pristine_table =
        MissionSystem::build(&[AnomalyClass::Stealing], &system_cfg(backend, precision))
            .session
            .table
            .param()
            .to_vec();
    let mut any_adapted = false;
    for shards in [1usize, 2, 4] {
        let sharded = run_sharded(&ds, n_streams, shards, backend, precision);
        for s in 0..n_streams {
            assert_eq!(
                sharded.scores[s], reference.scores[s],
                "stream {s}/{n_streams} at {shards} shards: scores diverged from single-shard"
            );
            assert_eq!(
                sharded.tables[s], reference.tables[s],
                "stream {s}/{n_streams} at {shards} shards: adapted token table diverged"
            );
            assert_eq!(
                sharded.replacements[s], reference.replacements[s],
                "stream {s} at {shards} shards: replacement counts diverged"
            );
            any_adapted |= sharded.tables[s] != pristine_table;
        }
    }
    assert!(any_adapted, "no stream adapted — the shard-equivalence check was vacuous");
}

#[test]
fn one_stream_matches_legacy_path() {
    check_equivalence(1, 16, Backend::Auto);
}

#[test]
fn four_streams_match_legacy_path() {
    check_equivalence(4, 16, Backend::Auto);
}

#[test]
fn sixteen_streams_match_legacy_path_with_chunked_batches() {
    // max_batch 8 forces ⌈16/8⌉ = 2 dispatches per tick — chunking must not
    // change a single bit either.
    check_equivalence(16, 8, Backend::Auto);
}

#[test]
fn four_streams_match_legacy_path_forced_scalar() {
    // The forced-scalar leg: the equivalence must hold on the portable
    // kernels too (and on AVX2 hosts this is a genuinely different backend
    // than the `Auto` runs above).
    check_equivalence(4, 16, Backend::Scalar);
}

#[test]
fn sharded_serving_is_bit_identical_to_single_shard_scalar() {
    check_shard_equivalence(16, Backend::Scalar, Precision::F32);
}

#[test]
fn sharded_serving_is_bit_identical_to_single_shard_simd() {
    // On non-AVX2 hosts `Backend::Simd` resolves to the scalar kernels, so
    // this leg never crashes anywhere but is a genuinely different backend
    // wherever the SIMD path exists.
    check_shard_equivalence(16, Backend::Simd, Precision::F32);
}

#[test]
fn sharded_serving_is_bit_identical_to_single_shard_int8_scalar() {
    // The int8 plane's sharded contract: quantized codes are derived once
    // at engine build and integer accumulation is exact, so partitioning
    // streams across shards must not move a single bit — same chain as the
    // f32 legs, now with the quantized serving plane engaged.
    check_shard_equivalence(16, Backend::Scalar, Precision::Int8);
}

#[test]
fn sharded_serving_is_bit_identical_to_single_shard_int8_simd() {
    check_shard_equivalence(16, Backend::Simd, Precision::Int8);
}
