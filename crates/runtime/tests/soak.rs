//! Long-run serving soak: a multi-stream deployment must reach a **fixed
//! memory high-water mark**. The inference data plane leases every scratch
//! buffer from the runtime's workspace; since a deployed model's shapes are
//! fixed (windows are always padded to the model window, structural
//! adaptation replaces nodes one-for-one), the pool stops growing after the
//! first few ticks — even across a mid-run trend shift that drives real
//! token updates and restructures.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{
    EngineSpec, MultiStreamRuntime, OwnedShardedRuntime, RuntimeConfig, ServeCounters,
    ShardedConfig, ShardedRuntime,
};
use std::sync::Arc;

const STREAMS: usize = 3;
const TICKS: usize = 520;
const WARMUP_TICKS: usize = 100;
const SHIFT_AT: usize = 260;

fn soak_dataset() -> Arc<SyntheticUcfCrime> {
    Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(31),
    ))
}

fn soak_adapt_cfg() -> AdaptConfig {
    AdaptConfig { n_window: 32, lag: 16, interval: 16, min_k: 1, ..Default::default() }
}

fn add_soak_streams<F: FnMut(akg_data::OwnedAdaptationStream, u64, AdaptConfig)>(
    ds: &Arc<SyntheticUcfCrime>,
    mut add: F,
) {
    for s in 0..STREAMS {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.4, 500 + s as u64);
        add(source, 0x50A ^ s as u64, soak_adapt_cfg());
    }
}

#[test]
fn workspace_high_water_stabilizes_over_500_ticks_with_trend_shift() {
    let ds = soak_dataset();
    let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let mut rt = MultiStreamRuntime::new(sys.engine, RuntimeConfig::default());
    add_soak_streams(&ds, |source, seed, cfg| {
        rt.add_stream(source, seed, cfg);
    });

    for tick in 0..WARMUP_TICKS {
        if tick == SHIFT_AT {
            unreachable!();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }
    let warm = rt.workspace_stats();
    assert!(warm.high_water_bytes() > 0, "workspace never used — soak is vacuous");

    // Session workspaces serve the adaptation loop's pseudo-label forwards,
    // which first run when a stream's adaptation first *triggers* — so
    // checkpoint them only after the trend shift has driven adaptation on
    // every stream (growth must stop; it need not stop before first use).
    let mut warm_sessions: Vec<usize> = Vec::new();
    const SESSION_CHECKPOINT: usize = 400;
    for tick in WARMUP_TICKS..TICKS {
        if tick == SHIFT_AT {
            for s in 0..STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Robbery);
            }
        }
        if tick == SESSION_CHECKPOINT {
            warm_sessions =
                (0..STREAMS).map(|s| rt.session(s).workspace_stats().high_water_bytes()).collect();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    let end = rt.workspace_stats();
    assert_eq!(
        end.high_water_bytes(),
        warm.high_water_bytes(),
        "runtime workspace high-water grew after warmup: {} -> {} bytes",
        warm.high_water_bytes(),
        end.high_water_bytes()
    );
    assert_eq!(
        end.buffers_created, warm.buffers_created,
        "runtime workspace allocated new buffers after warmup"
    );
    for (s, &warm_bytes) in warm_sessions.iter().enumerate() {
        let after = rt.session(s).workspace_stats().high_water_bytes();
        assert_eq!(after, warm_bytes, "stream {s}: session workspace high-water grew after warmup");
    }

    let c = rt.counters();
    assert_eq!(c.frames, STREAMS * TICKS);
    assert_eq!(c.ticks, TICKS);
    assert!(
        c.token_updates > 0,
        "no adaptation fired across the trend shift — the soak exercised nothing"
    );
}

/// One 520-tick sharded soak run: returns the final aggregate counters after
/// asserting every shard's serving workspace and every stream's session
/// workspace froze (no growth, no new buffers) between the checkpoint and
/// the end of the run.
fn run_sharded_soak(ds: &Arc<SyntheticUcfCrime>, shards: usize) -> ServeCounters {
    const SESSION_CHECKPOINT: usize = 400;
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
    let mut rt: OwnedShardedRuntime = ShardedRuntime::new(spec, ShardedConfig::with_shards(shards));
    add_soak_streams(ds, |source, seed, cfg| {
        rt.add_stream(source, seed, cfg);
    });

    // Shard workspaces first lease buffers during the first scored tick, but
    // session workspaces (pseudo-label forwards) first run when adaptation
    // first triggers — checkpoint everything after the trend shift has
    // driven adaptation, like the single-shard soak above.
    let mut checkpoint = Vec::new();
    for tick in 0..TICKS {
        if tick == SHIFT_AT {
            for s in 0..STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Robbery);
            }
        }
        if tick == SESSION_CHECKPOINT {
            checkpoint = rt.shard_snapshots();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    let end = rt.shard_snapshots();
    for (shard, (warm, after)) in checkpoint.iter().zip(&end).enumerate() {
        assert!(
            after.streams.is_empty() || after.workspace.high_water_bytes() > 0,
            "shard {shard}: workspace never used — soak is vacuous"
        );
        assert_eq!(
            after.workspace.high_water_bytes(),
            warm.workspace.high_water_bytes(),
            "shard {shard}: serving workspace high-water grew after warmup"
        );
        assert_eq!(
            after.workspace.buffers_created, warm.workspace.buffers_created,
            "shard {shard}: serving workspace allocated new buffers after warmup"
        );
        for (local, (w, a)) in warm.streams.iter().zip(&after.streams).enumerate() {
            assert_eq!(
                a.workspace.high_water_bytes(),
                w.workspace.high_water_bytes(),
                "shard {shard} local stream {local}: session workspace high-water grew"
            );
        }
    }
    rt.counters()
}

/// The sharded 520-tick soak: every shard's memory high-water freezes, and
/// the aggregate **semantic** counters of a 2-shard run match the 1-shard
/// run exactly. (`dispatches` legitimately depends on the shard layout —
/// each shard chunks its own streams by `max_batch` — so it is checked
/// against the layout formula instead of cross-run equality.)
#[test]
fn sharded_soak_freezes_workspaces_and_preserves_aggregate_counters() {
    let ds = soak_dataset();
    let single = run_sharded_soak(&ds, 1);
    let sharded = run_sharded_soak(&ds, 2);

    assert_eq!(sharded.frames, single.frames, "aggregate frames diverged across shard counts");
    assert_eq!(sharded.ticks, single.ticks, "tick counts diverged across shard counts");
    assert_eq!(
        sharded.token_updates, single.token_updates,
        "aggregate token updates diverged across shard counts"
    );
    assert_eq!(
        sharded.node_replacements, single.node_replacements,
        "aggregate node replacements diverged across shard counts"
    );
    assert_eq!(single.frames, STREAMS * TICKS);
    assert_eq!(single.ticks, TICKS);
    assert!(
        single.token_updates > 0,
        "no adaptation fired across the trend shift — the sharded soak exercised nothing"
    );

    // Dispatch layout: 3 streams in one shard is one ≤16 batch per tick;
    // split 2 + 1 across two shards it is two batches per tick.
    assert_eq!(single.dispatches, TICKS);
    assert_eq!(sharded.dispatches, 2 * TICKS);
    assert_eq!(single.max_batch_seen, STREAMS);
    assert_eq!(sharded.max_batch_seen, STREAMS.div_ceil(2));
}
