//! Long-run serving soak: a multi-stream deployment must reach a **fixed
//! memory high-water mark**. The inference data plane leases every scratch
//! buffer from the runtime's workspace; since a deployed model's shapes are
//! fixed (windows are always padded to the model window, structural
//! adaptation replaces nodes one-for-one), the pool stops growing after the
//! first few ticks — even across a mid-run trend shift that drives real
//! token updates and restructures.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{
    ArrivalPattern, DegradeLevel, EngineSpec, LoadConfig, LoadCounters, LoadedRuntime,
    MultiStreamRuntime, OwnedShardedRuntime, RuntimeConfig, ServeCounters, ShardedConfig,
    ShardedRuntime, StreamLoadStats, TickDecision,
};
use std::sync::Arc;

const STREAMS: usize = 3;
const TICKS: usize = 520;
const WARMUP_TICKS: usize = 100;
const SHIFT_AT: usize = 260;

fn soak_dataset() -> Arc<SyntheticUcfCrime> {
    Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(31),
    ))
}

fn soak_adapt_cfg() -> AdaptConfig {
    AdaptConfig { n_window: 32, lag: 16, interval: 16, min_k: 1, ..Default::default() }
}

fn add_soak_streams<F: FnMut(akg_data::OwnedAdaptationStream, u64, AdaptConfig)>(
    ds: &Arc<SyntheticUcfCrime>,
    mut add: F,
) {
    for s in 0..STREAMS {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.4, 500 + s as u64);
        add(source, 0x50A ^ s as u64, soak_adapt_cfg());
    }
}

/// The single-runtime 520-tick soak body, shared by the f32 and int8 legs:
/// warm up, checkpoint the workspace stats, run across the trend shift, and
/// assert every pool froze.
fn run_single_runtime_soak(config: &SystemConfig) {
    let ds = soak_dataset();
    let sys = MissionSystem::build(&[AnomalyClass::Stealing], config);
    let mut rt = MultiStreamRuntime::new(sys.engine, RuntimeConfig::default());
    add_soak_streams(&ds, |source, seed, cfg| {
        rt.add_stream(source, seed, cfg);
    });

    for tick in 0..WARMUP_TICKS {
        if tick == SHIFT_AT {
            unreachable!();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }
    let warm = rt.workspace_stats();
    assert!(warm.high_water_bytes() > 0, "workspace never used — soak is vacuous");

    // Session workspaces serve the adaptation loop's pseudo-label forwards,
    // which first run when a stream's adaptation first *triggers* — so
    // checkpoint them only after the trend shift has driven adaptation on
    // every stream (growth must stop; it need not stop before first use).
    let mut warm_sessions: Vec<usize> = Vec::new();
    const SESSION_CHECKPOINT: usize = 400;
    for tick in WARMUP_TICKS..TICKS {
        if tick == SHIFT_AT {
            for s in 0..STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Robbery);
            }
        }
        if tick == SESSION_CHECKPOINT {
            warm_sessions =
                (0..STREAMS).map(|s| rt.session(s).workspace_stats().high_water_bytes()).collect();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    let end = rt.workspace_stats();
    assert_eq!(
        end.high_water_bytes(),
        warm.high_water_bytes(),
        "runtime workspace high-water grew after warmup: {} -> {} bytes",
        warm.high_water_bytes(),
        end.high_water_bytes()
    );
    assert_eq!(
        end.buffers_created, warm.buffers_created,
        "runtime workspace allocated new buffers after warmup"
    );
    for (s, &warm_bytes) in warm_sessions.iter().enumerate() {
        let after = rt.session(s).workspace_stats().high_water_bytes();
        assert_eq!(after, warm_bytes, "stream {s}: session workspace high-water grew after warmup");
    }

    let c = rt.counters();
    assert_eq!(c.frames, STREAMS * TICKS);
    assert_eq!(c.ticks, TICKS);
    assert!(
        c.token_updates > 0,
        "no adaptation fired across the trend shift — the soak exercised nothing"
    );
}

#[test]
fn workspace_high_water_stabilizes_over_500_ticks_with_trend_shift() {
    run_single_runtime_soak(&SystemConfig::default());
}

/// The int8 leg: quantized serving leases `i8` activation scratch from the
/// same workspaces the f32 plane uses (adaptation's forwards stay f32, so
/// every tick mixes both pools) — the high-water mark must still freeze.
#[test]
fn workspace_high_water_stabilizes_at_int8_precision() {
    run_single_runtime_soak(&SystemConfig {
        precision: akg_tensor::Precision::Int8,
        ..SystemConfig::default()
    });
}

/// One 520-tick sharded soak run: returns the final aggregate counters after
/// asserting every shard's serving workspace and every stream's session
/// workspace froze (no growth, no new buffers) between the checkpoint and
/// the end of the run.
fn run_sharded_soak(ds: &Arc<SyntheticUcfCrime>, shards: usize) -> ServeCounters {
    const SESSION_CHECKPOINT: usize = 400;
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
    let mut rt: OwnedShardedRuntime = ShardedRuntime::new(spec, ShardedConfig::with_shards(shards));
    add_soak_streams(ds, |source, seed, cfg| {
        rt.add_stream(source, seed, cfg);
    });

    // Shard workspaces first lease buffers during the first scored tick, but
    // session workspaces (pseudo-label forwards) first run when adaptation
    // first triggers — checkpoint everything after the trend shift has
    // driven adaptation, like the single-shard soak above.
    let mut checkpoint = Vec::new();
    for tick in 0..TICKS {
        if tick == SHIFT_AT {
            for s in 0..STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Robbery);
            }
        }
        if tick == SESSION_CHECKPOINT {
            checkpoint = rt.shard_snapshots();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    let end = rt.shard_snapshots();
    for (shard, (warm, after)) in checkpoint.iter().zip(&end).enumerate() {
        assert!(
            after.streams.is_empty() || after.workspace.high_water_bytes() > 0,
            "shard {shard}: workspace never used — soak is vacuous"
        );
        assert_eq!(
            after.workspace.high_water_bytes(),
            warm.workspace.high_water_bytes(),
            "shard {shard}: serving workspace high-water grew after warmup"
        );
        assert_eq!(
            after.workspace.buffers_created, warm.workspace.buffers_created,
            "shard {shard}: serving workspace allocated new buffers after warmup"
        );
        for (local, (w, a)) in warm.streams.iter().zip(&after.streams).enumerate() {
            assert_eq!(
                a.workspace.high_water_bytes(),
                w.workspace.high_water_bytes(),
                "shard {shard} local stream {local}: session workspace high-water grew"
            );
        }
    }
    rt.counters()
}

/// The sharded 520-tick soak: every shard's memory high-water freezes, and
/// the aggregate **semantic** counters of a 2-shard run match the 1-shard
/// run exactly. (`dispatches` legitimately depends on the shard layout —
/// each shard chunks its own streams by `max_batch` — so it is checked
/// against the layout formula instead of cross-run equality.)
#[test]
fn sharded_soak_freezes_workspaces_and_preserves_aggregate_counters() {
    let ds = soak_dataset();
    let single = run_sharded_soak(&ds, 1);
    let sharded = run_sharded_soak(&ds, 2);

    assert_eq!(sharded.frames, single.frames, "aggregate frames diverged across shard counts");
    assert_eq!(sharded.ticks, single.ticks, "tick counts diverged across shard counts");
    assert_eq!(
        sharded.token_updates, single.token_updates,
        "aggregate token updates diverged across shard counts"
    );
    assert_eq!(
        sharded.node_replacements, single.node_replacements,
        "aggregate node replacements diverged across shard counts"
    );
    assert_eq!(single.frames, STREAMS * TICKS);
    assert_eq!(single.ticks, TICKS);
    assert!(
        single.token_updates > 0,
        "no adaptation fired across the trend shift — the sharded soak exercised nothing"
    );

    // Dispatch layout: 3 streams in one shard is one ≤16 batch per tick;
    // split 2 + 1 across two shards it is two batches per tick.
    assert_eq!(single.dispatches, TICKS);
    assert_eq!(sharded.dispatches, 2 * TICKS);
    assert_eq!(single.max_batch_seen, STREAMS);
    assert_eq!(sharded.max_batch_seen, STREAMS.div_ceil(2));
}

/// The complete observable state of one loaded soak run — everything the
/// loaded shard-equivalence contract says must be bit-identical across
/// shard counts, including *which* frames degraded.
struct LoadedFingerprint {
    scores: Vec<Vec<Option<f32>>>,
    decisions: Vec<TickDecision>,
    counters: LoadCounters,
    per_stream: Vec<StreamLoadStats>,
    wait_p50: u64,
    wait_p99: u64,
    wait_p999: u64,
    wait_max: u64,
    serve: ServeCounters,
    tables: Vec<Vec<f32>>,
}

/// The loaded soak's dataset carries the *strong* shift pair (Stealing →
/// Explosion, disjoint concepts — the paper's Fig. 5(B) scenario). Under
/// load the tracker sees a subsampled score sequence (coalesced frames are
/// ingested but not individually scored), which smears weak-shift
/// transients below the drift trigger's resolution; the strong shift
/// produces a genuine sustained mean drop that survives the subsampling.
fn loaded_soak_dataset() -> Arc<SyntheticUcfCrime> {
    Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Explosion])
            .with_seed(31),
    ))
}

/// A bursty arrival shape hot enough to walk the full degrade ladder every
/// burst (arrivals outrun the coalesce quota, so depth climbs through
/// skip-adapt, coalesce, and shed) and quiet enough between bursts for the
/// queues to drain back to Normal — where the streams serve steadily
/// (offered load ~0.7 of the Normal-rung service rate) so the adaptation
/// loop's interval boundaries land on fully-completed frames and adaptation
/// actually runs between bursts.
fn soak_load_cfg() -> LoadConfig {
    LoadConfig {
        pattern: ArrivalPattern::Bursty {
            on_ticks: 24,
            off_ticks: 72,
            burst_rate: 6.0,
            base_rate: 0.7,
        },
        seed: 0xB025_7A11,
        ..LoadConfig::default()
    }
}

/// One 520-tick loaded bursty soak across the mid-run trend shift,
/// asserting exact accounting after every single tick.
fn run_loaded_soak(ds: &Arc<SyntheticUcfCrime>, shards: usize) -> LoadedFingerprint {
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
    let cfg = soak_load_cfg();
    let mut rt: LoadedRuntime<akg_data::OwnedAdaptationStream> = if shards == 1 {
        LoadedRuntime::new(spec, cfg)
    } else {
        LoadedRuntime::sharded(spec, cfg, shards)
    };
    // Priorities 0 < 1 < 2: stream 0 sheds first, stream 2 is protected
    // until trimming the lower classes no longer clears the shed threshold.
    let mut priority = 0u8;
    add_soak_streams(ds, |source, seed, adapt| {
        rt.add_stream(source, seed, adapt, priority);
        priority += 1;
    });

    let mut scores: Vec<Vec<Option<f32>>> =
        std::iter::repeat_with(|| Vec::with_capacity(TICKS)).take(STREAMS).collect();
    for tick in 0..TICKS {
        if tick == SHIFT_AT {
            for s in 0..STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Explosion);
            }
        }
        for (s, score) in rt.tick().into_iter().enumerate() {
            if let Some(v) = score {
                assert!(v.is_finite() && (0.0..=1.0).contains(&v), "tick {tick}: bad score {v}");
            }
            scores[s].push(score);
        }
        // Exact accounting is a per-tick invariant, not an end-state one:
        // no frame may be unaccounted for even transiently.
        assert!(rt.counters().balanced(), "tick {tick}: accounting unbalanced {:?}", rt.counters());
    }

    let wait = rt.wait_ticks().clone();
    LoadedFingerprint {
        scores,
        decisions: rt.decisions().to_vec(),
        counters: rt.counters(),
        per_stream: rt.stream_stats().to_vec(),
        wait_p50: wait.percentile(0.50),
        wait_p99: wait.percentile(0.99),
        wait_p999: wait.percentile(0.999),
        wait_max: wait.max(),
        serve: rt.serve_counters(),
        tables: rt.stream_snapshots().into_iter().map(|s| s.table).collect(),
    }
}

/// The 520-tick loaded bursty soak across the trend shift: the latency SLO
/// holds (p99 queueing delay within the shed threshold), every degrade
/// rung fired and was counted exactly (the decision log re-derives the
/// counters), no frame was silently dropped, adaptation still ran in the
/// quiet phases — and the whole thing is bit-identical at 2 shards,
/// decision-for-decision.
#[test]
fn loaded_bursty_soak_holds_slo_with_exact_degrade_accounting() {
    let ds = loaded_soak_dataset();
    let single = run_loaded_soak(&ds, 1);
    let sharded = run_loaded_soak(&ds, 2);

    // --- The SLO: bounded queueing delay in deterministic tick units. ---
    // The shed rung caps queue depth at shed_depth and serving drains from
    // the front, so p99 wait must stay within one shed threshold and even
    // the worst frame within the queue capacity.
    let policy = soak_load_cfg().policy;
    assert!(
        single.wait_p99 <= policy.shed_depth as u64,
        "SLO violated: p99 wait {} ticks exceeds shed_depth {}",
        single.wait_p99,
        policy.shed_depth
    );
    assert!(
        single.wait_max <= policy.queue_capacity as u64,
        "worst-case wait {} ticks exceeds queue capacity {}",
        single.wait_max,
        policy.queue_capacity
    );
    assert!(single.wait_p50 <= single.wait_p99 && single.wait_p99 <= single.wait_p999);

    // --- Exact accounting: the ledger balances and the log re-derives it. ---
    let c = single.counters;
    assert!(c.balanced(), "final accounting unbalanced: {c:?}");
    assert_eq!(c.ticks, TICKS);
    assert_eq!(
        c.offered,
        c.served_full + c.served_degraded + c.coalesced + c.shed + c.overflow_dropped + c.queued,
        "a frame was silently dropped"
    );
    let log_served: u32 = single.decisions.iter().map(|d| d.served).sum();
    let log_coalesced: u32 = single.decisions.iter().map(|d| d.coalesced).sum();
    let log_shed: u32 = single.decisions.iter().map(|d| d.shed).sum();
    assert_eq!(log_served as usize, c.served_full + c.served_degraded);
    assert_eq!(log_coalesced as usize, c.coalesced);
    assert_eq!(log_shed as usize, c.shed);
    let stream_totals: usize = single.per_stream.iter().map(|s| s.offered).sum();
    assert_eq!(stream_totals, c.offered);

    // --- The ladder actually walked: every rung saw ticks and frames. ---
    for level in DegradeLevel::ALL {
        assert!(
            c.ticks_at_level[level.index()] > 0,
            "degrade rung {} never fired — the bursty soak exercised nothing",
            level.name()
        );
    }
    assert!(c.served_full > 0 && c.served_degraded > 0 && c.coalesced > 0 && c.shed > 0);
    // Priorities ordered the shedding: the lowest class sheds at least as
    // much as the most protected one.
    assert!(
        single.per_stream[0].shed >= single.per_stream[STREAMS - 1].shed,
        "priority ordering inverted: low-priority shed {} < high-priority shed {}",
        single.per_stream[0].shed,
        single.per_stream[STREAMS - 1].shed
    );
    // Adaptation still ran (in the quiet phases) across the strong trend
    // shift — degradation must not starve the adapt loop.
    assert!(
        single.serve.token_updates > 0,
        "no adaptation fired across the trend shift — degradation starved the adapt loop"
    );

    // --- Loaded shard equivalence, bit-for-bit. ---
    assert_eq!(single.decisions, sharded.decisions, "degrade decisions diverged across shards");
    assert_eq!(single.counters, sharded.counters, "load accounting diverged across shards");
    assert_eq!(single.per_stream, sharded.per_stream, "per-stream stats diverged across shards");
    assert_eq!(
        (single.wait_p50, single.wait_p99, single.wait_p999, single.wait_max),
        (sharded.wait_p50, sharded.wait_p99, sharded.wait_p999, sharded.wait_max),
        "wait-tick histograms diverged across shards"
    );
    assert_eq!(single.scores, sharded.scores, "scores diverged across shards");
    assert_eq!(single.tables, sharded.tables, "adapted tables diverged across shards");
    assert_eq!(single.serve.frames, sharded.serve.frames);
    assert_eq!(single.serve.token_updates, sharded.serve.token_updates);
    assert_eq!(single.serve.node_replacements, sharded.serve.node_replacements);
}
