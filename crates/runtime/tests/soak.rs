//! Long-run serving soak: a multi-stream deployment must reach a **fixed
//! memory high-water mark**. The inference data plane leases every scratch
//! buffer from the runtime's workspace; since a deployed model's shapes are
//! fixed (windows are always padded to the model window, structural
//! adaptation replaces nodes one-for-one), the pool stops growing after the
//! first few ticks — even across a mid-run trend shift that drives real
//! token updates and restructures.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{MultiStreamRuntime, RuntimeConfig};
use std::sync::Arc;

const STREAMS: usize = 3;
const TICKS: usize = 520;
const WARMUP_TICKS: usize = 100;
const SHIFT_AT: usize = 260;

#[test]
fn workspace_high_water_stabilizes_over_500_ticks_with_trend_shift() {
    let ds = Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(31),
    ));
    let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let mut rt = MultiStreamRuntime::new(sys.engine, RuntimeConfig::default());
    for s in 0..STREAMS {
        let source =
            AdaptationStream::owned(Arc::clone(&ds), AnomalyClass::Stealing, 0.4, 500 + s as u64);
        rt.add_stream(
            source,
            0x50A ^ s as u64,
            AdaptConfig { n_window: 32, lag: 16, interval: 16, min_k: 1, ..Default::default() },
        );
    }

    for tick in 0..WARMUP_TICKS {
        if tick == SHIFT_AT {
            unreachable!();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }
    let warm = rt.workspace_stats();
    assert!(warm.high_water_bytes() > 0, "workspace never used — soak is vacuous");

    // Session workspaces serve the adaptation loop's pseudo-label forwards,
    // which first run when a stream's adaptation first *triggers* — so
    // checkpoint them only after the trend shift has driven adaptation on
    // every stream (growth must stop; it need not stop before first use).
    let mut warm_sessions: Vec<usize> = Vec::new();
    const SESSION_CHECKPOINT: usize = 400;
    for tick in WARMUP_TICKS..TICKS {
        if tick == SHIFT_AT {
            for s in 0..STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Robbery);
            }
        }
        if tick == SESSION_CHECKPOINT {
            warm_sessions =
                (0..STREAMS).map(|s| rt.session(s).workspace_stats().high_water_bytes()).collect();
        }
        let scores = rt.tick();
        assert!(scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    let end = rt.workspace_stats();
    assert_eq!(
        end.high_water_bytes(),
        warm.high_water_bytes(),
        "runtime workspace high-water grew after warmup: {} -> {} bytes",
        warm.high_water_bytes(),
        end.high_water_bytes()
    );
    assert_eq!(
        end.buffers_created, warm.buffers_created,
        "runtime workspace allocated new buffers after warmup"
    );
    for (s, &warm_bytes) in warm_sessions.iter().enumerate() {
        let after = rt.session(s).workspace_stats().high_water_bytes();
        assert_eq!(after, warm_bytes, "stream {s}: session workspace high-water grew after warmup");
    }

    let c = rt.counters();
    assert_eq!(c.frames, STREAMS * TICKS);
    assert_eq!(c.ticks, TICKS);
    assert!(
        c.token_updates > 0,
        "no adaptation fired across the trend shift — the soak exercised nothing"
    );
}
