//! The session-tier recovery contract: serving interleaved streams through a
//! [`SessionTier`] whose working set is too small to hold them — so every
//! frame forces an evict → spool → rehydrate cycle — must produce
//! **bit-identical** per-frame scores to a tier large enough to never evict,
//! under both the Scalar and Simd backends. The tier is purely a
//! memory/latency trade; it must never move a score bit.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{SessionTier, TierConfig};
use akg_tensor::{Backend, Precision};
use std::sync::{Mutex, MutexGuard};

const N_SESSIONS: usize = 4;
const FRAMES_PER_SESSION: usize = 48;
const SHIFT_AT: usize = 24;

/// `MissionSystem::build` applies its config's backend process-wide —
/// serialize, as in `tests/equivalence.rs`.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn dataset() -> SyntheticUcfCrime {
    SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(77),
    )
}

fn adapt_cfg(stream: usize) -> AdaptConfig {
    AdaptConfig {
        n_window: 16,
        lag: 8,
        interval: 8,
        min_k: 1,
        max_k: 4,
        seed: stream as u64,
        ..AdaptConfig::default()
    }
}

fn build_tier(backend: Backend, max_resident: usize, tag: &str) -> SessionTier {
    let sys = MissionSystem::build(
        &[AnomalyClass::Stealing],
        &SystemConfig { seed: 5, backend, precision: Precision::F32, ..SystemConfig::default() },
    );
    let mut cfg = TierConfig::bounded(max_resident);
    // distinct spool per (test, backend) so parallel tests never collide
    cfg.spool_dir = cfg.spool_dir.join(format!("test-{tag}-{backend:?}-{max_resident}"));
    SessionTier::new(sys.engine, cfg)
}

/// Round-robin serves every session through the tier and returns the
/// per-session score sequences.
fn serve_all(tier: &mut SessionTier, ds: &SyntheticUcfCrime) -> Vec<Vec<u32>> {
    let ids: Vec<_> =
        (0..N_SESSIONS).map(|s| tier.register(0xBEEF ^ (s as u64 * 101), adapt_cfg(s))).collect();
    let mut sources: Vec<_> = (0..N_SESSIONS)
        .map(|s| AdaptationStream::new(ds, AnomalyClass::Stealing, 0.5, 1000 + s as u64))
        .collect();
    let mut scores: Vec<Vec<u32>> =
        (0..N_SESSIONS).map(|_| Vec::with_capacity(FRAMES_PER_SESSION)).collect();
    for tick in 0..FRAMES_PER_SESSION {
        for s in 0..N_SESSIONS {
            if tick == SHIFT_AT {
                sources[s].shift_to(AnomalyClass::Robbery);
            }
            let (frame, _) = sources[s].next_frame();
            let score = tier.serve_frame(ids[s], &frame).expect("tier serve");
            scores[s].push(score.to_bits());
        }
    }
    scores
}

fn check_churned_tier_matches_resident_tier(backend: Backend) {
    let _guard = lock_backend();
    let ds = dataset();

    // reference: working set big enough that nothing is ever evicted
    let mut all_resident = build_tier(backend, N_SESSIONS, "ref");
    let want = serve_all(&mut all_resident, &ds);
    assert_eq!(all_resident.counters().evictions, 0, "reference tier must never evict");

    // churned: a one-session working set forces an evict + rehydrate on
    // every single session switch
    let mut churned = build_tier(backend, 1, "churn");
    let got = serve_all(&mut churned, &ds);

    for s in 0..N_SESSIONS {
        assert_eq!(
            got[s], want[s],
            "session {s} under {backend:?}: evict→rehydrate→continue changed the scores"
        );
    }
    let c = churned.counters();
    assert_eq!(c.cold_starts, N_SESSIONS);
    assert_eq!(c.rehydration_failures, 0, "every rehydration must validate");
    // round-robin at cap 1: all but the very first serve of each revisit
    // cycle rehydrates — the counters must show real churn, not a silent
    // cache-everything fallback
    assert_eq!(c.rehydrations, N_SESSIONS * FRAMES_PER_SESSION - N_SESSIONS);
    assert_eq!(c.evictions, c.rehydrations + N_SESSIONS - 1);
    assert_eq!(churned.resident_count(), 1);
    assert_eq!(churned.resume_latency().count() as usize, c.rehydrations);

    // the adaptation must not have been vacuous: at least one session's
    // overlay materialized rows (its checkpoint carries a non-empty delta,
    // well under the dense table's serialized size)
    let adapted = (0..N_SESSIONS).filter_map(|s| churned.checkpoint_bytes(s)).max();
    assert!(adapted.is_some(), "no session ever produced a checkpoint");

    all_resident.clear_spool();
    churned.clear_spool();
}

#[test]
fn evict_rehydrate_continue_is_bit_identical_scalar() {
    check_churned_tier_matches_resident_tier(Backend::Scalar);
}

#[test]
fn evict_rehydrate_continue_is_bit_identical_simd() {
    // resolves to the scalar kernels on hosts without AVX2+FMA, so this leg
    // is safe everywhere and a genuinely different backend where SIMD exists
    check_churned_tier_matches_resident_tier(Backend::Simd);
}

/// Overlay sessions are why the tier scales: a freshly served overlay
/// session's private state must be at least 10× smaller than the dense fork
/// of the same engine.
#[test]
fn overlay_resident_bytes_are_a_fraction_of_dense() {
    let _guard = lock_backend();
    let ds = dataset();
    let mut tier = build_tier(Backend::Scalar, N_SESSIONS, "bytes");
    serve_all(&mut tier, &ds);
    let overlay_per_session = tier.resident_bytes() / tier.resident_count();
    let dense_per_session = tier.engine().new_session_dense(7).state_bytes();
    assert!(
        overlay_per_session * 10 <= dense_per_session,
        "overlay session ({overlay_per_session} B) not ≥10× smaller than dense fork \
         ({dense_per_session} B)"
    );
    tier.clear_spool();
}
