//! The recovery-equivalence contract, fuzzed: for any shard count, queue
//! depth, checkpoint interval, crash style (clean exit vs panic), victim
//! shard, and crash tick, a run that loses a worker mid-flight produces
//! **bit-identical** scores, adapted state, and serve counters to the same
//! run with no faults at all — under both forced-Scalar and forced-SIMD
//! backends. The fixed-scenario legs live in `tests/recovery.rs`; this file
//! is the adversary that picks the crash coordinates.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::SystemConfig;
use akg_data::Frame;
use akg_kg::AnomalyClass;
use akg_runtime::{
    EngineSpec, FaultPlan, FnSource, RecoveryStats, ServeCounters, ShardedConfig, ShardedRuntime,
    StreamSnapshot,
};
use akg_tensor::Backend;
use proptest::prelude::*;

/// Deterministic per-stream frames whose content depends on the stream and
/// its own frame counter — any replayed-twice, dropped, or cross-delivered
/// frame shifts that stream's scores.
fn counted_source(stream: usize) -> FnSource<impl FnMut() -> (Frame, bool)> {
    let mut t = 0usize;
    FnSource(move || {
        t += 1;
        let salt = stream * 31 + t * 7;
        let concepts = match salt % 3 {
            0 => vec![("walking".into(), 1.0)],
            1 => vec![("person".into(), 0.8), ("vehicle".into(), 0.4)],
            _ => vec![("running".into(), 0.6), ("person".into(), 0.3)],
        };
        (Frame { concepts, label: None }, false)
    })
}

/// Small windows so the adaptive loop has a chance to touch per-stream
/// state inside short fuzzed runs — recovery must restore that state too,
/// not just the score pipeline.
fn adapt_cfg(stream: usize) -> AdaptConfig {
    AdaptConfig {
        n_window: 8,
        lag: 4,
        interval: 4,
        min_k: 1,
        max_k: 4,
        seed: stream as u64,
        ..AdaptConfig::default()
    }
}

struct Outcome {
    scores: Vec<Vec<f32>>,
    snapshots: Vec<StreamSnapshot>,
    counters: ServeCounters,
    recovery: RecoveryStats,
}

fn serve(
    streams: usize,
    ticks: usize,
    backend: Backend,
    config: ShardedConfig,
    faults: FaultPlan,
) -> Outcome {
    let spec = EngineSpec::new(
        &[AnomalyClass::Stealing],
        SystemConfig { backend, ..SystemConfig::default() },
    );
    let mut rt = ShardedRuntime::with_faults(spec, config, faults);
    for s in 0..streams {
        rt.add_stream(counted_source(s), s as u64, adapt_cfg(s));
    }
    let scores = rt.run(ticks);
    Outcome {
        scores,
        snapshots: rt.stream_snapshots(),
        counters: rt.counters(),
        recovery: rt.recovery_stats(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn crash_at_any_tick_recovers_bit_identically(
        streams in 2usize..6,
        shards in 2usize..5,
        queue_depth in 1usize..4,
        checkpoint_interval in 1usize..8,
        ticks in 10usize..32,
        victim_raw in 0usize..16,
        crash_raw in 0usize..64,
        panics_raw in 0usize..2,
        simd_raw in 0usize..2,
    ) {
        let victim = victim_raw % shards;
        // Worker-local crash ticks are 1-based; every shard receives every
        // global tick, so any tick in [1, ticks] is a live crash site —
        // including tick 1 (genesis replay) and checkpoint boundaries.
        let crash_tick = 1 + crash_raw % ticks;
        let backend = if simd_raw == 1 { Backend::Simd } else { Backend::Scalar };
        let faults = if panics_raw == 1 {
            FaultPlan::panic_at(victim, crash_tick)
        } else {
            FaultPlan::crash_at(victim, crash_tick)
        };
        let config = ShardedConfig {
            shards,
            max_batch: 4,
            queue_depth,
            checkpoint_interval,
            inner_threads: Some(1),
            ..ShardedConfig::default()
        };

        let clean = serve(streams, ticks, backend, config, FaultPlan::none());
        let faulted = serve(streams, ticks, backend, config, faults);

        // Clean run must not recover; faulted run sees exactly the one
        // injected crash and replays at least one tick to heal it.
        prop_assert_eq!(clean.recovery.recoveries, 0);
        prop_assert_eq!(faulted.recovery.recoveries, 1);
        prop_assert!(faulted.recovery.replayed_ticks >= 1);

        // The contract: a crash at ANY tick is invisible in the output.
        prop_assert_eq!(&faulted.scores, &clean.scores);
        prop_assert_eq!(&faulted.counters, &clean.counters);
        for (f, c) in faulted.snapshots.iter().zip(&clean.snapshots) {
            prop_assert_eq!(&f.table, &c.table);
            prop_assert_eq!(f.replacements, c.replacements);
            prop_assert_eq!(f.token_updates, c.token_updates);
        }
    }
}
