//! Error-path tests for runtime misconfiguration: the documented panics of
//! `ShardedRuntime::new`, the degenerate-topology behaviors (fewer streams
//! than shards), zero-capacity SPSC channels, and the degrade-ladder
//! policy's ordering invariants. Every panic asserted here is part of the
//! public contract (documented on the constructor), not incidental.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::SystemConfig;
use akg_data::Frame;
use akg_kg::AnomalyClass;
use akg_runtime::{
    DegradePolicy, EngineSpec, FnSource, LoadConfig, LoadedRuntime, ShardedConfig, ShardedRuntime,
};

type TestSource = FnSource<Box<dyn FnMut() -> (Frame, bool)>>;

fn spec() -> EngineSpec {
    EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default())
}

fn source(stream: usize) -> TestSource {
    let mut t = 0usize;
    FnSource(Box::new(move || {
        t += 1;
        let concepts = if (stream + t).is_multiple_of(2) {
            vec![("walking".into(), 1.0)]
        } else {
            vec![("person".into(), 0.8)]
        };
        (Frame { concepts, label: None }, false)
    }))
}

#[test]
#[should_panic(expected = "shards must be positive")]
fn sharded_runtime_rejects_zero_shards() {
    let _: ShardedRuntime<TestSource> =
        ShardedRuntime::new(spec(), ShardedConfig { shards: 0, ..ShardedConfig::default() });
}

#[test]
#[should_panic(expected = "queue_depth must be positive")]
fn sharded_runtime_rejects_zero_queue_depth() {
    let _: ShardedRuntime<TestSource> = ShardedRuntime::new(
        spec(),
        ShardedConfig { queue_depth: 0, ..ShardedConfig::with_shards(1) },
    );
}

#[test]
#[should_panic(expected = "max_batch must be positive")]
fn sharded_runtime_rejects_zero_max_batch() {
    let _: ShardedRuntime<TestSource> = ShardedRuntime::new(
        spec(),
        ShardedConfig { max_batch: 0, ..ShardedConfig::with_shards(1) },
    );
}

#[test]
#[should_panic(expected = "capacity must be positive")]
fn spsc_rejects_zero_capacity() {
    let _ = akg_runtime::spsc::channel::<u32>(0);
}

/// Fewer streams than shards is a *documented-working* degenerate topology,
/// not an error: surplus workers idle-acknowledge every round and the
/// results match the fully-populated layout bit-for-bit.
#[test]
fn fewer_streams_than_shards_serves_correctly() {
    let mut wide = ShardedRuntime::new(spec(), ShardedConfig::with_shards(4));
    let mut narrow = ShardedRuntime::new(spec(), ShardedConfig::with_shards(1));
    for s in 0..2usize {
        wide.add_stream(source(s), s as u64, AdaptConfig::default());
        narrow.add_stream(source(s), s as u64, AdaptConfig::default());
    }
    let wide_scores = wide.run(5);
    let narrow_scores = narrow.run(5);
    assert_eq!(wide_scores, narrow_scores, "surplus shards changed results");
    assert_eq!(wide.counters().frames, 10);
    assert_eq!(wide.counters().frames, narrow.counters().frames);
}

#[test]
#[should_panic(expected = "no streams registered")]
fn sharded_tick_with_zero_streams_panics() {
    let mut rt: ShardedRuntime<TestSource> =
        ShardedRuntime::new(spec(), ShardedConfig::with_shards(2));
    let _ = rt.tick();
}

#[test]
#[should_panic(expected = "skip_adapt_depth must be ≥ 1")]
fn policy_rejects_zero_skip_adapt_depth() {
    DegradePolicy { skip_adapt_depth: 0, ..DegradePolicy::default() }.validate();
}

#[test]
#[should_panic(expected = "skip_adapt_depth must not exceed coalesce_depth")]
fn policy_rejects_inverted_skip_and_coalesce() {
    DegradePolicy { skip_adapt_depth: 9, coalesce_depth: 8, ..DegradePolicy::default() }.validate();
}

#[test]
#[should_panic(expected = "coalesce_depth must not exceed shed_depth")]
fn policy_rejects_inverted_coalesce_and_shed() {
    DegradePolicy { coalesce_depth: 17, shed_depth: 16, ..DegradePolicy::default() }.validate();
}

#[test]
#[should_panic(expected = "shed_depth must not exceed queue_capacity")]
fn policy_rejects_shed_depth_beyond_capacity() {
    DegradePolicy { shed_depth: 33, queue_capacity: 32, shed_keep: 8, ..DegradePolicy::default() }
        .validate();
}

#[test]
#[should_panic(expected = "coalesce_max must be ≥ 1")]
fn policy_rejects_zero_coalesce_max() {
    DegradePolicy { coalesce_max: 0, ..DegradePolicy::default() }.validate();
}

#[test]
#[should_panic(expected = "shed_keep must be < shed_depth")]
fn loaded_runtime_validates_policy_at_construction() {
    let cfg = LoadConfig {
        policy: DegradePolicy { shed_keep: 20, shed_depth: 16, ..DegradePolicy::default() },
        ..LoadConfig::default()
    };
    let _: LoadedRuntime<TestSource> = LoadedRuntime::new(spec(), cfg);
}

#[test]
#[should_panic(expected = "shards must be positive")]
fn loaded_runtime_rejects_zero_shards() {
    let _: LoadedRuntime<TestSource> = LoadedRuntime::sharded(spec(), LoadConfig::default(), 0);
}

#[test]
#[should_panic(expected = "no streams registered")]
fn loaded_tick_with_zero_streams_panics() {
    let mut rt: LoadedRuntime<TestSource> = LoadedRuntime::new(spec(), LoadConfig::default());
    let _ = rt.tick();
}
