//! Direct unit + property tests for the hand-rolled bounded SPSC channel —
//! previously exercised only indirectly through the sharded runtime. The
//! properties that matter to the tick pipeline: FIFO delivery with nothing
//! dropped or duplicated under arbitrary producer/consumer burst
//! interleavings, hard blocking at capacity (the backpressure the sharded
//! runtime's memory discipline rests on), and clean close-while-blocked
//! semantics in both directions.

use akg_runtime::spsc::{self, RecvError, SendError, TryRecvError};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn sender_at_capacity_does_not_run_ahead() {
    // Fill a depth-2 queue, then start a producer that must block: the
    // third send cannot complete until the consumer drains one slot.
    let (tx, rx) = spsc::channel(2);
    tx.send(0u32).unwrap();
    tx.send(1).unwrap();
    let sent = Arc::new(AtomicUsize::new(2));
    let sent_inner = Arc::clone(&sent);
    let producer = std::thread::spawn(move || {
        tx.send(2).unwrap();
        sent_inner.store(3, Ordering::SeqCst);
        tx.send(3).unwrap();
        sent_inner.store(4, Ordering::SeqCst);
    });
    // The producer must be parked at capacity, not buffering ahead.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(sent.load(Ordering::SeqCst), 2, "send returned while the queue was full");
    assert_eq!(rx.recv(), Ok(0));
    assert_eq!(rx.recv(), Ok(1));
    assert_eq!(rx.recv(), Ok(2));
    assert_eq!(rx.recv(), Ok(3));
    producer.join().unwrap();
    assert_eq!(rx.recv(), Err(RecvError));
}

#[test]
fn receiver_blocked_on_empty_wakes_on_send() {
    let (tx, rx) = spsc::channel::<u32>(1);
    let consumer = std::thread::spawn(move || rx.recv());
    // Let the consumer park on the empty queue before the send arrives.
    std::thread::sleep(Duration::from_millis(30));
    tx.send(99).unwrap();
    assert_eq!(consumer.join().unwrap(), Ok(99));
}

#[test]
fn receiver_blocked_on_empty_wakes_on_sender_drop() {
    let (tx, rx) = spsc::channel::<u32>(1);
    let consumer = std::thread::spawn(move || rx.recv());
    std::thread::sleep(Duration::from_millis(30));
    drop(tx);
    assert_eq!(
        consumer.join().unwrap(),
        Err(RecvError),
        "close-while-blocked must yield a typed disconnect"
    );
}

#[test]
fn sender_blocked_at_capacity_wakes_on_receiver_drop() {
    let (tx, rx) = spsc::channel(1);
    tx.send(1u32).unwrap();
    let producer = std::thread::spawn(move || tx.send(2));
    std::thread::sleep(Duration::from_millis(30));
    drop(rx);
    assert_eq!(
        producer.join().unwrap(),
        Err(SendError(2)),
        "close-while-blocked must hand the unsent message back"
    );
}

#[test]
fn drop_with_queued_messages_drops_them_cleanly() {
    // Messages left in the queue when both ends drop must be released
    // (checked by dropping Arcs and counting strong references).
    let payload = Arc::new(());
    let (tx, rx) = spsc::channel(4);
    for _ in 0..3 {
        tx.send(Arc::clone(&payload)).unwrap();
    }
    drop(tx);
    drop(rx);
    assert_eq!(Arc::strong_count(&payload), 1, "queued messages leaked on drop");
}

/// Replays a fuzzed schedule: the producer sends `total` sequenced items in
/// bursts with optional yields, the consumer drains in bursts of `recv` and
/// `try_recv` mixes. Every message must arrive exactly once, in order.
fn run_interleaving(capacity: usize, total: usize, consumer_bursts: &[(usize, usize)]) {
    let (tx, rx) = spsc::channel(capacity);
    let producer = std::thread::spawn(move || {
        for i in 0..total {
            tx.send(i).unwrap();
            if i % 3 == 0 {
                std::thread::yield_now();
            }
        }
    });
    let mut next = 0usize;
    for &(burst, spin) in consumer_bursts {
        for _ in 0..burst {
            if next >= total {
                break;
            }
            let value = if spin == 1 {
                // Drain through the non-blocking path, spinning on empty.
                loop {
                    match rx.try_recv() {
                        Ok(v) => break v,
                        Err(TryRecvError::Empty) => std::thread::yield_now(),
                        Err(TryRecvError::Disconnected) => {
                            panic!("sender disconnected with messages outstanding")
                        }
                    }
                }
            } else {
                rx.recv().expect("sender still alive or queue non-empty")
            };
            assert_eq!(value, next, "out-of-order or duplicated delivery");
            next += 1;
        }
    }
    // Drain whatever the schedule left over, then observe disconnect.
    while let Ok(value) = rx.recv() {
        assert_eq!(value, next);
        next += 1;
    }
    assert_eq!(next, total, "messages dropped");
    producer.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fuzzed_burst_interleavings_deliver_exactly_once(
        capacity in 1usize..8,
        total in 1usize..200,
        bursts in proptest::collection::vec((1usize..40, 0usize..2), 1..8),
    ) {
        run_interleaving(capacity, total, &bursts);
    }

    #[test]
    fn fuzzed_early_receiver_drop_never_loses_the_rejected_message(
        capacity in 1usize..4,
        accepted in 0usize..6,
    ) {
        // The receiver takes `accepted` messages then drops; the producer's
        // next send must fail fast and return that exact message.
        let (tx, rx) = spsc::channel(capacity);
        let producer = std::thread::spawn(move || {
            let mut i = 0usize;
            loop {
                match tx.send(i) {
                    Ok(()) => i += 1,
                    Err(SendError(v)) => return (i, v),
                }
            }
        });
        let mut got = 0usize;
        for _ in 0..accepted {
            match rx.recv() {
                Ok(v) => {
                    prop_assert_eq!(v, got);
                    got += 1;
                }
                Err(RecvError) => break,
            }
        }
        drop(rx);
        let (sent_ok, rejected) = producer.join().unwrap();
        // The rejected message is exactly the first one never enqueued.
        prop_assert_eq!(rejected, sent_ok);
        prop_assert!(sent_ok >= got, "consumer saw messages the producer never enqueued");
    }
}
