//! The shed ladder as a pure function, fuzzed: identical `(seed, arrival
//! pattern, policy, stream count, priorities)` must yield **bit-identical**
//! shed/degrade decision logs, exact accounting, deterministic wait-tick
//! histograms, final scores, and final adapted tables — across repeated
//! runs, across shard counts (the loaded extension of the PR 6
//! shard-equivalence contract), and under both the Scalar and SIMD
//! backends (`BACKEND_LOCK` held, same discipline as `equivalence.rs`).

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::SystemConfig;
use akg_data::Frame;
use akg_kg::AnomalyClass;
use akg_runtime::{
    ArrivalPattern, DegradePolicy, EngineSpec, FnSource, LoadConfig, LoadCounters, LoadedRuntime,
    StreamLoadStats, TickDecision,
};
use akg_tensor::Backend;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Engine builds apply their config's backend process-wide; serialize the
/// loaded comparisons so nothing flips the backend mid-run.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic per-stream frame sequence (content depends on stream and
/// frame counter, so any reordered/dropped/extra pull shifts the scores).
fn counted_source(stream: usize) -> FnSource<impl FnMut() -> (Frame, bool)> {
    let mut t = 0usize;
    FnSource(move || {
        t += 1;
        let salt = stream * 31 + t * 7;
        let concepts = match salt % 3 {
            0 => vec![("walking".into(), 1.0)],
            1 => vec![("person".into(), 0.8), ("vehicle".into(), 0.4)],
            _ => vec![("running".into(), 0.6), ("person".into(), 0.3)],
        };
        (Frame { concepts, label: None }, false)
    })
}

fn adapt_cfg(stream: usize) -> AdaptConfig {
    AdaptConfig {
        n_window: 16,
        lag: 8,
        interval: 8,
        min_k: 1,
        max_k: 4,
        seed: stream as u64,
        ..AdaptConfig::default()
    }
}

/// Everything a loaded run exposes that the determinism contract covers.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    scores: Vec<Vec<Option<f32>>>,
    decisions: Vec<TickDecision>,
    counters: LoadCounters,
    per_stream: Vec<StreamLoadStats>,
    wait_p50: u64,
    wait_p99: u64,
    wait_max: u64,
    wait_count: u64,
    tables: Vec<Vec<f32>>,
}

fn run_loaded(
    backend: Backend,
    pattern: ArrivalPattern,
    seed: u64,
    streams: usize,
    priorities: &[u8],
    shards: usize,
    ticks: usize,
) -> RunFingerprint {
    let spec = EngineSpec::new(
        &[AnomalyClass::Stealing],
        SystemConfig { seed: 5, backend, ..SystemConfig::default() },
    );
    let cfg = LoadConfig {
        pattern,
        seed,
        policy: DegradePolicy {
            queue_capacity: 16,
            skip_adapt_depth: 2,
            coalesce_depth: 4,
            shed_depth: 8,
            shed_keep: 4,
            coalesce_max: 3,
        },
        max_batch: 4,
    };
    let mut rt = if shards == 1 {
        LoadedRuntime::new(spec, cfg)
    } else {
        LoadedRuntime::sharded(spec, cfg, shards)
    };
    for (s, &priority) in priorities.iter().enumerate().take(streams) {
        rt.add_stream(counted_source(s), 0xBEEF ^ (s as u64 * 101), adapt_cfg(s), priority);
    }
    let scores = rt.run(ticks);
    let wait = rt.wait_ticks().clone();
    RunFingerprint {
        scores,
        decisions: rt.decisions().to_vec(),
        counters: rt.counters(),
        per_stream: rt.stream_stats().to_vec(),
        wait_p50: wait.percentile(0.50),
        wait_p99: wait.percentile(0.99),
        wait_max: wait.max(),
        wait_count: wait.count(),
        tables: rt.stream_snapshots().into_iter().map(|s| s.table).collect(),
    }
}

/// The decision log must re-derive the counters exactly — the log *is* the
/// accounting, not a parallel estimate of it.
fn assert_log_matches_counters(fp: &RunFingerprint, ticks: usize) {
    assert_eq!(fp.decisions.len(), ticks);
    let served: u32 = fp.decisions.iter().map(|d| d.served).sum();
    let coalesced: u32 = fp.decisions.iter().map(|d| d.coalesced).sum();
    let shed: u32 = fp.decisions.iter().map(|d| d.shed).sum();
    assert_eq!(served as usize, fp.counters.served_full + fp.counters.served_degraded);
    assert_eq!(coalesced as usize, fp.counters.coalesced);
    assert_eq!(shed as usize, fp.counters.shed);
    assert!(fp.counters.balanced(), "accounting unbalanced: {:?}", fp.counters);
    // Per-stream accounting re-sums to the global counters.
    let offered: usize = fp.per_stream.iter().map(|s| s.offered).sum();
    assert_eq!(offered, fp.counters.offered);
    let stream_shed: usize = fp.per_stream.iter().map(|s| s.shed).sum();
    assert_eq!(stream_shed, fp.counters.shed);
    // Every drained frame's wait was recorded.
    assert_eq!(fp.wait_count as usize, fp.counters.drained());
}

fn pattern_for(index: usize) -> ArrivalPattern {
    match index {
        0 => ArrivalPattern::Poisson { rate: 1.4 },
        1 => ArrivalPattern::Bursty { on_ticks: 6, off_ticks: 10, burst_rate: 3.0, base_rate: 0.2 },
        _ => ArrivalPattern::Ramp { base_rate: 0.2, slope: 0.08, peak_rate: 3.0 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn shed_ladder_is_pure_across_runs_shards_and_backends(
        pattern_index in 0usize..3,
        seed in 0u64..u64::MAX,
        streams in 1usize..5,
        shards in 2usize..4,
        priority_salt in 0u8..4,
        ticks in 40usize..70,
    ) {
        let _guard = lock_backend();
        let pattern = pattern_for(pattern_index);
        let priorities: Vec<u8> =
            (0..streams).map(|s| (s as u8 + priority_salt) % 3).collect();

        for backend in [Backend::Scalar, Backend::Simd] {
            let single = run_loaded(backend, pattern, seed, streams, &priorities, 1, ticks);
            let replay = run_loaded(backend, pattern, seed, streams, &priorities, 1, ticks);
            let sharded = run_loaded(backend, pattern, seed, streams, &priorities, shards, ticks);

            assert_log_matches_counters(&single, ticks);

            // Re-running the identical configuration replays the run
            // bit-for-bit: decisions, accounting, scores, tables.
            prop_assert_eq!(&single, &replay);

            // The loaded shard-equivalence contract: a sharded node makes
            // the same degrade decisions AND produces the same scores and
            // final adapted state as the single node, bit-for-bit.
            prop_assert_eq!(&single, &sharded);
        }
    }
}
