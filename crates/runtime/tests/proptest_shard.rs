//! Property tests for the sharded runtime's scheduling invariants: for any
//! stream count, shard count, queue depth, and frame-arrival interleaving
//! (mixes of pipelined `run()` bursts and synchronous `tick()`s), shard
//! assignment is stable, no frame is dropped or double-scored, and every
//! stream's score sequence is bit-identical to the single-shard,
//! unpipelined schedule.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::SystemConfig;
use akg_data::Frame;
use akg_kg::AnomalyClass;
use akg_runtime::{EngineSpec, FnSource, ShardedConfig, ShardedRuntime};
use proptest::prelude::*;

/// A deterministic per-stream frame sequence: frame content depends on both
/// the stream and its own frame counter, so any dropped, duplicated, or
/// cross-delivered frame shifts that stream's scores.
fn counted_source(stream: usize) -> FnSource<impl FnMut() -> (Frame, bool)> {
    let mut t = 0usize;
    FnSource(move || {
        t += 1;
        let salt = stream * 31 + t * 7;
        let concepts = match salt % 3 {
            0 => vec![("walking".into(), 1.0)],
            1 => vec![("person".into(), 0.8), ("vehicle".into(), 0.4)],
            _ => vec![("running".into(), 0.6), ("person".into(), 0.3)],
        };
        (Frame { concepts, label: None }, false)
    })
}

/// Serves `chunks` bursts (each `run(chunk)`, interleaved with single
/// `tick()`s when a chunk is 1) and returns per-stream score sequences plus
/// the final counters — asserting assignment stability along the way.
fn serve(
    streams: usize,
    shards: usize,
    queue_depth: usize,
    max_batch: usize,
    chunks: &[usize],
) -> (Vec<Vec<f32>>, akg_runtime::ServeCounters) {
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
    let mut rt = ShardedRuntime::new(
        spec,
        ShardedConfig {
            shards,
            max_batch,
            queue_depth,
            inner_threads: Some(1),
            ..ShardedConfig::default()
        },
    );
    for s in 0..streams {
        let id = rt.add_stream(counted_source(s), s as u64, AdaptConfig::default());
        assert_eq!(id, s);
        assert_eq!(rt.shard_of(id), id % shards, "assignment must be stream_id % shards");
    }
    let mut scores = vec![Vec::new(); streams];
    for &chunk in chunks {
        let burst = if chunk == 1 { vec![rt.tick()] } else { transpose(rt.run(chunk), chunk) };
        for tick_scores in burst {
            for (s, score) in tick_scores.into_iter().enumerate() {
                scores[s].push(score);
            }
        }
        for id in 0..streams {
            assert_eq!(rt.shard_of(id), id % shards, "assignment drifted mid-run");
        }
    }
    (scores, rt.counters())
}

/// `run()` returns `[stream][tick]`; flip to `[tick][stream]` so bursts and
/// single ticks accumulate identically.
fn transpose(by_stream: Vec<Vec<f32>>, ticks: usize) -> Vec<Vec<f32>> {
    (0..ticks).map(|t| by_stream.iter().map(|s| s[t]).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharding_drops_nothing_and_matches_single_shard(
        streams in 1usize..6,
        shards in 1usize..5,
        queue_depth in 1usize..4,
        max_batch in 1usize..5,
        chunks in proptest::collection::vec(1usize..5, 1..4),
    ) {
        let ticks: usize = chunks.iter().sum();
        // Reference schedule: one shard, no pipelining, one burst.
        let (reference, ref_counters) = serve(streams, 1, 1, max_batch, &[ticks]);
        let (scores, counters) = serve(streams, shards, queue_depth, max_batch, &chunks);

        // Conservation: every frame scored exactly once, none invented.
        prop_assert_eq!(counters.frames, streams * ticks);
        prop_assert_eq!(counters.ticks, ticks);
        prop_assert_eq!(ref_counters.frames, counters.frames);
        for seq in &scores {
            prop_assert_eq!(seq.len(), ticks);
        }

        // The shard-equivalence contract, fuzzed: any shard count, depth,
        // and burst interleaving yields the single-shard scores bit-for-bit.
        prop_assert_eq!(scores, reference);
    }
}
