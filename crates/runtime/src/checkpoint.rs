//! In-memory checkpointing for shard-worker recovery.
//!
//! The sharded runtime's workers periodically capture their streams' full
//! session state ([`akg_core::persist::SessionCheckpoint`] — adapted KGs,
//! token-table fork, RNG positions, adaptation-loop state) and piggyback the
//! capture on their normal tick reply; the front-end keeps the latest few in
//! a bounded [`CheckpointRing`] per shard, alongside a replay buffer of the
//! tick inputs sent since. When a worker dies, the supervisor rebuilds the
//! replica engine from its `EngineSpec`, restores the newest checkpoint, and
//! replays the buffered ticks — deterministic replay makes the recovered
//! worker bit-identical to one that never died (the recovery-equivalence
//! contract in `tests/recovery.rs`).
//!
//! Everything here is plain owned data (`Send`), sized by the checkpoint
//! interval: the replay buffer never holds more than `checkpoint_interval`
//! ticks of frames once the first checkpoint lands, so memory stays bounded
//! on an edge box no matter how long the run.

use crate::ServeCounters;
use akg_core::adapt::AdaptConfig;
use akg_core::persist::SessionCheckpoint;
use serde::Serialize;
use std::collections::VecDeque;

/// One stream's recovery record: everything `add_stream` + restore needs to
/// reopen the stream bit-identically inside a fresh worker.
#[derive(Debug, Clone)]
pub struct StreamCheckpoint {
    /// The frame seed the stream was registered with (session RNG identity).
    pub frame_seed: u64,
    /// The stream's adaptation configuration.
    pub adapt: AdaptConfig,
    /// The full session state at capture time.
    pub session: SessionCheckpoint,
    /// Lifetime token-update count at capture (survives worker death so
    /// post-recovery totals match the undisturbed run).
    pub token_updates: usize,
    /// Lifetime node-replacement count at capture.
    pub replacements: usize,
}

/// One shard's recovery record: all its streams at a consistent tick
/// boundary, plus the worker's counters at that boundary.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// The worker-local (1-based) tick count this capture is consistent at.
    pub tick: usize,
    /// The worker's serve counters at that boundary.
    pub counters: ServeCounters,
    /// Per-local-stream records, in the shard's local registration order.
    pub streams: Vec<StreamCheckpoint>,
}

/// A bounded ring of the most recent [`ShardCheckpoint`]s. The supervisor
/// restores from the newest; older entries are redundancy against the (not
/// currently possible in-process) case of a corrupt capture, and bound the
/// ring's memory to `capacity` full checkpoints.
#[derive(Debug, Default)]
pub struct CheckpointRing {
    entries: VecDeque<ShardCheckpoint>,
    capacity: usize,
}

impl CheckpointRing {
    /// An empty ring holding at most `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a ring that can hold nothing would
    /// silently disable recovery.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CheckpointRing: capacity must be positive");
        CheckpointRing { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Pushes a newer checkpoint, evicting the oldest beyond capacity.
    pub fn push(&mut self, cp: ShardCheckpoint) {
        debug_assert!(
            self.entries.back().is_none_or(|prev| prev.tick < cp.tick),
            "checkpoints must arrive in increasing tick order"
        );
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(cp);
    }

    /// The newest checkpoint, if any has landed yet.
    pub fn latest(&self) -> Option<&ShardCheckpoint> {
        self.entries.back()
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no checkpoint has landed yet (recovery replays from
    /// genesis: stream re-registration plus the full tick history).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Aggregate recovery metrics for one sharded runtime. The deterministic
/// fields (`recoveries`, `replayed_*`) are part of the recovery-equivalence
/// fingerprint; `recovery_wall_nanos` is wall-clock and reported for
/// operators only (never compared).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryStats {
    /// Successful worker recoveries (respawn + restore + replay).
    pub recoveries: usize,
    /// Ticks re-executed across all recoveries.
    pub replayed_ticks: usize,
    /// Frames re-shipped inside those replayed ticks.
    pub replayed_frames: usize,
    /// Longest single recovery's replay window, in ticks — bounded by the
    /// checkpoint interval plus the pipeline depth once checkpoints flow.
    pub max_replay_ticks: usize,
    /// Recoveries that restored from a checkpoint (vs genesis replay).
    pub from_checkpoint: usize,
    /// Total wall-clock nanoseconds spent inside recovery (respawn through
    /// replay drain). Reporting only — not deterministic.
    pub recovery_wall_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(tick: usize) -> ShardCheckpoint {
        ShardCheckpoint { tick, counters: ServeCounters::default(), streams: Vec::new() }
    }

    #[test]
    fn ring_keeps_the_newest_within_capacity() {
        let mut ring = CheckpointRing::new(2);
        assert!(ring.is_empty());
        assert!(ring.latest().is_none());
        ring.push(cp(16));
        ring.push(cp(32));
        ring.push(cp(48));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.latest().unwrap().tick, 48);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_rejects_zero_capacity() {
        let _ = CheckpointRing::new(0);
    }
}
