//! A minimal bounded single-producer/single-consumer channel.
//!
//! The sharded runtime wires its ingest front-end to each shard worker (and
//! each worker back to the drain) with exactly one producer and one consumer
//! per queue, so this is all the channel machinery it needs — and the build
//! environment has no crates.io access (no `crossbeam`), so it is
//! hand-rolled here. The SPSC discipline is enforced by construction:
//! [`Sender`] and [`Receiver`] are not `Clone`, so each endpoint has exactly
//! one owner.
//!
//! ## Design
//!
//! A `Mutex<VecDeque>` plus two condvars, not a lock-free ring. The sharded
//! runtime exchanges **one message per shard per tick** (a whole tick's
//! frames travel together), so the lock is uncontended in steady state and
//! the fancy version would buy nothing; what matters is the *bounded*
//! capacity, which is what gives the runtime backpressure — a front-end
//! that runs ahead of a slow shard blocks on [`Sender::send`] instead of
//! growing an unbounded backlog (the edge-deployment memory discipline).
//!
//! ## Shutdown and failure
//!
//! Disconnection is a **typed, recoverable condition**, never a panic: a
//! dropped (or crashed) peer surfaces as [`SendError`] / [`RecvError`] /
//! [`TryRecvError::Disconnected`], which is exactly the signal the sharded
//! runtime's supervisor keys worker-death recovery off. Dropping the
//! [`Sender`] lets the receiver drain what was queued and then observe
//! disconnection; dropping the [`Receiver`] makes further sends fail fast,
//! handing the unsent message back. A peer that dies *panicking* mid-send
//! or mid-recv poisons nothing observable either: every lock acquisition
//! recovers the mutex via [`std::sync::PoisonError::into_inner`] (the
//! protected state is always consistent — each critical section is a
//! single queue operation), so the survivor sees a clean disconnect
//! instead of a poisoned-mutex panic.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    sender_alive: bool,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when the queue shrinks or the receiver goes away.
    not_full: Condvar,
    /// Signalled when the queue grows or the sender goes away.
    not_empty: Condvar,
}

/// The producing endpoint of a bounded SPSC channel. Not `Clone` — single
/// producer by construction.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming endpoint of a bounded SPSC channel. Not `Clone` — single
/// consumer by construction.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// unsent message back to the caller so nothing is silently lost.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spsc send failed: receiver disconnected")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`]: the sender is gone **and** every
/// queued message has been drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spsc recv failed: sender disconnected and queue drained")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`], distinguishing "nothing queued
/// right now" from "the peer is gone for good" — the distinction the
/// supervisor's non-blocking drain needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is empty but the sender is still alive.
    Empty,
    /// The sender is gone and the queue is drained; no message will ever
    /// arrive.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "spsc try_recv: queue empty"),
            TryRecvError::Disconnected => write!(f, "spsc try_recv: sender disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Creates a bounded SPSC channel holding at most `capacity` queued
/// messages.
///
/// # Panics
///
/// Panics if `capacity == 0` (a zero-capacity rendezvous is never what the
/// tick pipeline wants: it would serialize producer and consumer).
///
/// # Examples
///
/// ```
/// use akg_runtime::spsc::RecvError;
///
/// let (tx, rx) = akg_runtime::spsc::channel(2);
/// tx.send(1).unwrap();
/// tx.send(2).unwrap();
/// drop(tx);
/// assert_eq!(rx.recv(), Ok(1));
/// assert_eq!(rx.recv(), Ok(2));
/// assert_eq!(rx.recv(), Err(RecvError)); // sender gone, queue drained
/// ```
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc::channel: capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            sender_alive: true,
            receiver_alive: true,
        }),
        capacity,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues a message, blocking while the channel is at capacity.
    ///
    /// # Errors
    ///
    /// Returns the message back inside [`SendError`] if the receiver has
    /// been dropped (immediately, or while waiting for space).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state =
                self.shared.not_full.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.sender_alive = false;
        drop(state);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the sender has been dropped **and** every
    /// queued message has been drained — the recoverable worker-death
    /// signal the sharded supervisor acts on.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if !state.sender_alive {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Dequeues the next message if one is queued; never blocks.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued but the sender is
    /// alive; [`TryRecvError::Disconnected`] when the sender is gone and the
    /// queue is drained.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match state.queue.pop_front() {
            Some(value) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(value)
            }
            None if state.sender_alive => Err(TryRecvError::Empty),
            None => Err(TryRecvError::Disconnected),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.receiver_alive = false;
        drop(state);
        self.shared.not_full.notify_one();
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Sender").field("capacity", &self.shared.capacity).finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Receiver").field("capacity", &self.shared.capacity).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_within_capacity() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn blocks_at_capacity_until_drained() {
        let (tx, rx) = channel(2);
        tx.send(0u32).unwrap();
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || {
            // this send must block until the consumer below makes room
            tx.send(2).unwrap();
            tx.send(3).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn receiver_sees_disconnect_after_drain() {
        let (tx, rx) = channel(3);
        tx.send("a").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.recv(), Err(RecvError), "disconnect must be sticky");
    }

    #[test]
    fn send_fails_fast_when_receiver_gone() {
        let (tx, rx) = channel(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = channel(1);
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || tx.send(2));
        // give the producer time to block on the full queue, then drop
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn try_recv_never_blocks_and_types_the_reason() {
        let (tx, rx) = channel(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn panicking_sender_surfaces_as_clean_disconnect() {
        // A worker that dies *panicking* must surface to the survivor as a
        // typed disconnect, not a poisoned-mutex panic — the property the
        // sharded supervisor's death detection rests on.
        let (tx, rx) = channel::<u32>(2);
        let worker = std::thread::spawn(move || {
            tx.send(41).unwrap();
            panic!("injected worker death");
        });
        assert!(worker.join().is_err(), "worker should have panicked");
        assert_eq!(rx.recv(), Ok(41), "queued message lost to a panicking sender");
        assert_eq!(rx.recv(), Err(RecvError), "panic did not surface as disconnect");
    }

    #[test]
    fn cross_thread_stress_delivers_every_message_once() {
        for capacity in [1usize, 2, 7] {
            let (tx, rx) = channel(capacity);
            const N: usize = 10_000;
            let producer = std::thread::spawn(move || {
                for i in 0..N {
                    tx.send(i).unwrap();
                }
            });
            let mut next = 0usize;
            while let Ok(v) = rx.recv() {
                assert_eq!(v, next, "capacity {capacity}: out of order or duplicated");
                next += 1;
            }
            assert_eq!(next, N, "capacity {capacity}: dropped messages");
            producer.join().unwrap();
        }
    }
}
