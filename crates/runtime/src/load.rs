//! The latency-SLO load harness: a deterministic seeded arrival generator
//! (Poisson, bursty on/off, adversarial ramp) driving the serving runtimes
//! with timestamped frames through a bounded-ingest backpressure layer that
//! applies the [`slo`](crate::slo) degrade ladder.
//!
//! ## Determinism is the design
//!
//! Everything that decides *what happens to a frame* is a pure function of
//! `(seed, pattern, tick, stream id, queue depths, priorities, policy)`:
//!
//! * arrivals come from counter-mode splitmix64 hashing —
//!   [`LoadGenerator::arrivals`] takes `(tick, stream)` by value and keeps
//!   no state, so arrival sequences are order-independent and replayable
//!   from any tick;
//! * the degrade rung is [`DegradePolicy::level`] of the post-arrival
//!   deepest queue; shedding trims lowest-priority streams in (priority,
//!   stream id) order by [`DegradePolicy::shed_excess`]; serve quotas are
//!   [`DegradePolicy::serve_quota`]. No wall clock, no RNG, no thread
//!   timing touches any of it.
//!
//! The wall clock appears in exactly one place: the *reporting-only*
//! nanosecond latency histogram. The deterministic twin — queueing delay in
//! ticks — is what tests assert on.
//!
//! ## Loaded shard equivalence
//!
//! [`LoadedRuntime`] holds the whole decision loop on the front-end and
//! ships workers nothing but `(frames, `[`StreamPlan`]`)` batches, so the
//! PR 6 shard-equivalence contract extends to loaded serving structurally:
//! a sharded node executes the *same* plans the single node would, and
//! `tests/soak.rs` + `tests/proptest_load.rs` assert bit-identical scores,
//! shed/degrade decision logs, per-stream accounting, and wait-tick
//! histograms across shard counts, under both backends.

use crate::checkpoint::{RecoveryStats, ShardCheckpoint};
use crate::fault::{corrupt_frame, FaultPlan};
use crate::shard::{EngineSpec, ShardedConfig, ShardedRuntime, StreamSnapshot};
use crate::slo::{
    DegradeLevel, DegradePolicy, LatencyHistogram, LoadCounters, StreamLoadStats, TickDecision,
};
use crate::{FrameSource, MultiStreamRuntime, RuntimeConfig, ServeCounters, StreamId, StreamPlan};
use akg_core::adapt::{AdaptConfig, AdaptEvent};
use akg_data::Frame;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

/// splitmix64's output mixer: the standard finalizer with full avalanche,
/// used here in counter mode (hash of a value, not an advancing state) so
/// arrival draws are pure functions of their coordinates.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The top 53 bits as a uniform in `[0, 1)`.
pub(crate) fn unit_uniform(v: u64) -> f64 {
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic arrival-rate shapes for the load generator. Rates are in
/// frames per tick per stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Stationary Poisson arrivals at `rate`.
    Poisson {
        /// Mean arrivals per tick per stream.
        rate: f64,
    },
    /// On/off bursts: `burst_rate` for `on_ticks`, then `base_rate` for
    /// `off_ticks`, repeating. The shape that exercises the whole degrade
    /// ladder: queues build through every rung during a burst and drain
    /// back to [`DegradeLevel::Normal`] in the quiet phase.
    Bursty {
        /// Ticks per burst phase.
        on_ticks: u64,
        /// Ticks per quiet phase.
        off_ticks: u64,
        /// Mean arrivals per tick during a burst.
        burst_rate: f64,
        /// Mean arrivals per tick between bursts.
        base_rate: f64,
    },
    /// Adversarial ramp: rate grows linearly from `base_rate` by `slope`
    /// per tick until `peak_rate` — the overload endgame where shedding
    /// and overflow become steady-state.
    Ramp {
        /// Starting rate.
        base_rate: f64,
        /// Rate increase per tick.
        slope: f64,
        /// Rate ceiling.
        peak_rate: f64,
    },
}

impl ArrivalPattern {
    /// The named presets the perf harness's `--load` flag accepts
    /// (`"poisson"`, `"bursty"`, `"ramp"`).
    pub fn preset(name: &str) -> Option<ArrivalPattern> {
        match name {
            "poisson" => Some(ArrivalPattern::Poisson { rate: 0.9 }),
            "bursty" => Some(ArrivalPattern::Bursty {
                on_ticks: 24,
                off_ticks: 72,
                burst_rate: 3.0,
                base_rate: 0.15,
            }),
            "ramp" => Some(ArrivalPattern::Ramp { base_rate: 0.1, slope: 0.02, peak_rate: 5.0 }),
            _ => None,
        }
    }

    /// The pattern's stable preset name.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Bursty { .. } => "bursty",
            ArrivalPattern::Ramp { .. } => "ramp",
        }
    }

    /// The mean arrival rate at `tick` — a pure function of the tick index.
    pub fn rate_at(&self, tick: u64) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate } => rate,
            ArrivalPattern::Bursty { on_ticks, off_ticks, burst_rate, base_rate } => {
                let period = on_ticks + off_ticks;
                if period == 0 || tick % period < on_ticks {
                    burst_rate
                } else {
                    base_rate
                }
            }
            ArrivalPattern::Ramp { base_rate, slope, peak_rate } => {
                (base_rate + slope * tick as f64).min(peak_rate)
            }
        }
    }
}

/// The seeded, stateless arrival generator: Poisson draws in counter mode.
/// [`LoadGenerator::arrivals`] is a pure function of `(seed, pattern, tick,
/// stream)` — no internal state advances — so any `(tick, stream)` cell can
/// be queried in any order and always answers the same.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenerator {
    /// The arrival-rate shape.
    pub pattern: ArrivalPattern,
    /// The seed; together with the pattern it fixes every arrival.
    pub seed: u64,
}

impl LoadGenerator {
    /// Arrivals for stream `stream` at tick `tick`: a Poisson draw
    /// (Knuth's product method) at [`ArrivalPattern::rate_at`]`(tick)`,
    /// capped at 64 per cell as a tail guard.
    pub fn arrivals(&self, tick: u64, stream: u64) -> u32 {
        let rate = self.pattern.rate_at(tick);
        if rate <= 0.0 {
            return 0;
        }
        let cell = splitmix64(splitmix64(splitmix64(self.seed) ^ tick) ^ stream);
        let threshold = (-rate).exp();
        let mut k = 0u32;
        let mut product = 1.0f64;
        for draw in 1..=64u64 {
            product *= unit_uniform(splitmix64(cell.wrapping_add(draw)));
            if product <= threshold {
                return k;
            }
            k += 1;
        }
        k
    }
}

/// Configuration of a [`LoadedRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// The arrival-rate shape.
    pub pattern: ArrivalPattern,
    /// Seed for the arrival generator.
    pub seed: u64,
    /// The degrade ladder (validated at construction).
    pub policy: DegradePolicy,
    /// Largest cross-stream batch one scoring dispatch may carry (the inner
    /// runtime's [`RuntimeConfig::max_batch`]).
    pub max_batch: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            pattern: ArrivalPattern::preset("poisson").unwrap(),
            seed: 0x51_0AD,
            policy: DegradePolicy::default(),
            max_batch: 16,
        }
    }
}

/// A [`FrameSource`] that must never be pulled: the sharded node under a
/// [`LoadedRuntime`] receives every frame via
/// [`ShardedRuntime::tick_planned`], so its per-stream sources are inert
/// placeholders.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleSource;

impl FrameSource for IdleSource {
    fn next_frame(&mut self) -> (Frame, bool) {
        unreachable!("IdleSource pulled: loaded serving ships frames via tick_planned")
    }
}

/// The shared handle behind one stream's [`QueueFeed`] (mirrors the shard
/// worker's tick feed, front-end side).
type FeedHandle = Rc<RefCell<VecDeque<(Frame, bool)>>>;

/// The single-node counterpart of the shard worker's tick feed: the loaded
/// front-end deposits exactly `plan.ingest` frames before each
/// [`MultiStreamRuntime::tick_with_plan`], so the pop never underflows.
struct QueueFeed(FeedHandle);

impl FrameSource for QueueFeed {
    fn next_frame(&mut self) -> (Frame, bool) {
        self.0.borrow_mut().pop_front().expect("QueueFeed: no frame deposited for this tick")
    }
}

/// A frame waiting in a bounded ingest queue, stamped with its arrival
/// coordinates: the tick (deterministic latency unit) and the wall-clock
/// instant (reporting-only nanosecond latency).
struct TimedFrame {
    frame: Frame,
    label: bool,
    arrived_tick: u64,
    arrived_at: Instant,
}

/// The execution node under the load harness: the same decision loop
/// drives either shape, which is what makes loaded shard equivalence
/// structural rather than coincidental.
enum Node {
    Single { rt: Box<MultiStreamRuntime<QueueFeed>>, feeds: Vec<FeedHandle> },
    Sharded(Box<ShardedRuntime<IdleSource>>),
}

/// The loaded serving harness: seeded arrivals → bounded per-stream ingest
/// queues → deterministic degrade ladder → planned execution on a single
/// or sharded node, with exact accounting ([`LoadCounters::balanced`]) and
/// allocation-free per-frame latency capture. See the module docs.
pub struct LoadedRuntime<S: FrameSource> {
    sources: Vec<S>,
    priorities: Vec<u8>,
    queues: Vec<VecDeque<TimedFrame>>,
    node: Node,
    generator: LoadGenerator,
    policy: DegradePolicy,
    tick: u64,
    counters: LoadCounters,
    per_stream: Vec<StreamLoadStats>,
    decisions: Vec<TickDecision>,
    wait_ticks: LatencyHistogram,
    latency_nanos: LatencyHistogram,
    /// Reused per-tick plan buffer (no per-tick allocation once sized).
    plans: Vec<StreamPlan>,
    /// Reused per-tick drained-frame stamps, recorded after execution.
    served_meta: Vec<(u64, Instant)>,
    /// Deterministic fault plan. Frame corruptions fire here at the ingest
    /// boundary (identically for both node shapes); worker crashes and
    /// stalls fire inside the sharded node, which recovers through them —
    /// a single node has no workers to kill, so crash faults are inert
    /// there by design (that *is* the recovery-equivalence baseline).
    faults: FaultPlan,
}

impl<S: FrameSource> LoadedRuntime<S> {
    /// A loaded harness over a single-node [`MultiStreamRuntime`] built
    /// from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.policy` violates its ordering invariants
    /// ([`DegradePolicy::validate`]) or `cfg.max_batch == 0`.
    pub fn new(spec: EngineSpec, cfg: LoadConfig) -> Self {
        Self::new_with_faults(spec, cfg, FaultPlan::none())
    }

    /// Like [`LoadedRuntime::new`], but with a deterministic [`FaultPlan`]:
    /// frame corruptions fire at the ingest boundary and are rejected
    /// (counted, never served). Worker-crash and stall faults are inert on
    /// a single node — there is no worker to kill — which makes this the
    /// fault-free baseline the chaos soak compares the sharded node
    /// against.
    pub fn new_with_faults(spec: EngineSpec, cfg: LoadConfig, faults: FaultPlan) -> Self {
        cfg.policy.validate();
        let rt = MultiStreamRuntime::new(
            spec.build(),
            RuntimeConfig { max_batch: cfg.max_batch, batched: true },
        );
        Self::with_node(Node::Single { rt: Box::new(rt), feeds: Vec::new() }, cfg, faults)
    }

    /// A loaded harness over a [`ShardedRuntime`] with `shards` workers.
    /// Every degrade decision is still taken here on the front-end, so the
    /// run is bit-identical to [`LoadedRuntime::new`] with the same config.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid, `cfg.max_batch == 0`, or
    /// `shards == 0`.
    pub fn sharded(spec: EngineSpec, cfg: LoadConfig, shards: usize) -> Self {
        Self::sharded_with_faults(spec, cfg, shards, FaultPlan::none())
    }

    /// Like [`LoadedRuntime::sharded`], but with a deterministic
    /// [`FaultPlan`]: corruptions fire at the front-end ingest boundary
    /// (exactly as on a single node), while crashes and stalls fire inside
    /// the shard workers, where the supervisor recovers through them. The
    /// recovery-equivalence contract says the result is still bit-identical
    /// to the fault-free baseline modulo rejected frames — which the same
    /// plan rejects identically on both node shapes.
    pub fn sharded_with_faults(
        spec: EngineSpec,
        cfg: LoadConfig,
        shards: usize,
        faults: FaultPlan,
    ) -> Self {
        cfg.policy.validate();
        let sharded = ShardedRuntime::with_faults(
            spec,
            ShardedConfig { max_batch: cfg.max_batch, ..ShardedConfig::with_shards(shards) },
            faults.clone(),
        );
        Self::with_node(Node::Sharded(Box::new(sharded)), cfg, faults)
    }

    fn with_node(node: Node, cfg: LoadConfig, faults: FaultPlan) -> Self {
        LoadedRuntime {
            sources: Vec::new(),
            priorities: Vec::new(),
            queues: Vec::new(),
            node,
            generator: LoadGenerator { pattern: cfg.pattern, seed: cfg.seed },
            policy: cfg.policy,
            tick: 0,
            counters: LoadCounters::default(),
            per_stream: Vec::new(),
            decisions: Vec::new(),
            wait_ticks: LatencyHistogram::new(),
            latency_nanos: LatencyHistogram::new(),
            plans: Vec::new(),
            served_meta: Vec::new(),
            faults,
        }
    }

    /// Registers a stream with its shed priority (**higher = more
    /// important**; the shed rung drops from the lowest priority class
    /// first). The source stays on the front-end; the execution node gets a
    /// queue-fed twin seeded exactly as [`MultiStreamRuntime::add_stream`]
    /// would. Returns the stream's id.
    pub fn add_stream(
        &mut self,
        source: S,
        frame_seed: u64,
        adapt: AdaptConfig,
        priority: u8,
    ) -> StreamId {
        match &mut self.node {
            Node::Single { rt, feeds } => {
                let feed: FeedHandle = Rc::new(RefCell::new(VecDeque::new()));
                feeds.push(Rc::clone(&feed));
                rt.add_stream(QueueFeed(feed), frame_seed, adapt);
            }
            Node::Sharded(rt) => {
                rt.add_stream(IdleSource, frame_seed, adapt);
            }
        }
        self.sources.push(source);
        self.priorities.push(priority);
        self.queues.push(VecDeque::new());
        self.per_stream.push(StreamLoadStats::default());
        self.sources.len() - 1
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.sources.len()
    }

    /// Mutable access to a stream's frame source (e.g. to trigger a trend
    /// shift mid-run). Sources always live on the front-end, for both node
    /// shapes.
    pub fn source_mut(&mut self, id: StreamId) -> &mut S {
        &mut self.sources[id]
    }

    /// Exact-accounting counters so far.
    pub fn counters(&self) -> LoadCounters {
        self.counters
    }

    /// Per-stream accounting, indexed by [`StreamId`].
    pub fn stream_stats(&self) -> &[StreamLoadStats] {
        &self.per_stream
    }

    /// The degrade decision log, one entry per tick — what determinism
    /// tests compare bit-for-bit across runs and shard counts.
    pub fn decisions(&self) -> &[TickDecision] {
        &self.decisions
    }

    /// Queueing-delay histogram in **ticks** (deterministic; recorded for
    /// every frame that drains into the engine, scored or coalesced).
    pub fn wait_ticks(&self) -> &LatencyHistogram {
        &self.wait_ticks
    }

    /// Arrival-to-served latency histogram in **nanoseconds** (wall-clock;
    /// reporting only — never asserted deterministic).
    pub fn latency_nanos(&self) -> &LatencyHistogram {
        &self.latency_nanos
    }

    /// A stream's current ingest-queue depth.
    pub fn queue_depth(&self, id: StreamId) -> usize {
        self.queues[id].len()
    }

    /// The execution node's throughput counters.
    pub fn serve_counters(&self) -> ServeCounters {
        match &self.node {
            Node::Single { rt, .. } => rt.counters(),
            Node::Sharded(rt) => rt.counters(),
        }
    }

    /// The sharded node's recovery metrics (all-zero for a single node,
    /// which has no workers to lose).
    pub fn recovery_stats(&self) -> RecoveryStats {
        match &self.node {
            Node::Single { .. } => RecoveryStats::default(),
            Node::Sharded(rt) => rt.recovery_stats(),
        }
    }

    /// The sharded node's newest retained checkpoint per shard (empty for
    /// a single node). The bench harness uses this to report checkpoint
    /// size without re-capturing state.
    pub fn latest_checkpoints(&self) -> Vec<Option<&ShardCheckpoint>> {
        match &self.node {
            Node::Single { .. } => Vec::new(),
            Node::Sharded(rt) => rt.latest_checkpoints(),
        }
    }

    /// Per-stream adapted-state snapshots, indexed by [`StreamId`] — the
    /// same shape for both node types, so loaded equivalence tests compare
    /// them directly.
    pub fn stream_snapshots(&mut self) -> Vec<StreamSnapshot> {
        match &mut self.node {
            Node::Single { rt, .. } => (0..rt.stream_count())
                .map(|id| {
                    let events = rt.adapt_events(id);
                    StreamSnapshot {
                        table: rt.session(id).table.to_dense_vec(),
                        replacements: events
                            .iter()
                            .filter(|e| matches!(e, AdaptEvent::NodeReplaced { .. }))
                            .count(),
                        token_updates: events
                            .iter()
                            .filter(|e| matches!(e, AdaptEvent::TokenUpdate { .. }))
                            .count(),
                        workspace: rt.session(id).workspace_stats(),
                    }
                })
                .collect(),
            Node::Sharded(rt) => rt.stream_snapshots(),
        }
    }

    /// One loaded scheduler round:
    ///
    /// 1. **arrivals** — each stream draws [`LoadGenerator::arrivals`]
    ///    frames from its source into its bounded queue (full queue ⇒
    ///    tail-drop, counted; the source advances regardless, so stream
    ///    content never depends on backpressure);
    /// 2. **ladder** — the degrade rung is chosen from the post-arrival
    ///    deepest queue;
    /// 3. **shed** — at the shed rung, lowest-priority classes drop their
    ///    oldest frames down to `shed_keep`, class by class, until the
    ///    deepest queue is below `shed_depth`;
    /// 4. **plan & execute** — each stream drains up to the rung's quota
    ///    (oldest first) into a [`StreamPlan`]; the node executes all plans
    ///    in one planned tick;
    /// 5. **account** — latencies recorded for every drained frame, the
    ///    decision logged, and [`LoadCounters::balanced`] holds.
    ///
    /// Returns per-stream scores (`None` = the stream had no frame served
    /// this tick).
    ///
    /// # Panics
    ///
    /// Panics if no streams are registered.
    pub fn tick(&mut self) -> Vec<Option<f32>> {
        let n = self.sources.len();
        assert!(n > 0, "tick: no streams registered");
        let now = self.tick;

        // Phase 1 — arrivals into bounded queues, validated at the ingest
        // boundary: a malformed frame (planned corruption, or a hostile
        // source) is rejected and counted — never enqueued, never served,
        // never silently lost. The source advances regardless, so stream
        // content stays independent of the fault plan's timing.
        for (id, source) in self.sources.iter_mut().enumerate() {
            let k = self.generator.arrivals(now, id as u64);
            for j in 0..k {
                let (mut frame, label) = source.next_frame();
                self.counters.offered += 1;
                self.per_stream[id].offered += 1;
                if j == 0 {
                    if let Some(kind) = self.faults.corruption(now, id as u64) {
                        corrupt_frame(&mut frame, kind);
                    }
                }
                if frame.validate().is_err() {
                    self.counters.rejected += 1;
                    self.per_stream[id].rejected += 1;
                } else if self.queues[id].len() >= self.policy.queue_capacity {
                    self.counters.overflow_dropped += 1;
                    self.per_stream[id].overflow_dropped += 1;
                } else {
                    self.queues[id].push_back(TimedFrame {
                        frame,
                        label,
                        arrived_tick: now,
                        arrived_at: Instant::now(),
                    });
                }
            }
        }

        // Phase 2 — pick the ladder rung from the deepest queue.
        let max_depth = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
        self.counters.max_queue_depth = self.counters.max_queue_depth.max(max_depth);
        let level = self.policy.level(max_depth);
        self.counters.ticks_at_level[level.index()] += 1;

        // Phase 3 — shed: lowest priority class first, stream id order
        // within a class, oldest frames first, until below shed_depth.
        let mut shed_this_tick = 0u32;
        if level == DegradeLevel::Shed {
            let mut classes: Vec<u8> = self.priorities.clone();
            classes.sort_unstable();
            classes.dedup();
            for class in classes {
                for id in 0..n {
                    if self.priorities[id] != class {
                        continue;
                    }
                    let excess = self.policy.shed_excess(self.queues[id].len());
                    for _ in 0..excess {
                        self.queues[id].pop_front();
                        self.counters.shed += 1;
                        self.per_stream[id].shed += 1;
                        shed_this_tick += 1;
                    }
                }
                let deepest = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
                if deepest < self.policy.shed_depth {
                    break;
                }
            }
        }

        // Phase 4 — plan each stream's drain and execute on the node. The
        // newest drained frame is the scored representative; older ones
        // coalesce into the rolling window without an individual score.
        let quota = self.policy.serve_quota(level);
        let adapt = level == DegradeLevel::Normal;
        self.plans.clear();
        self.served_meta.clear();
        let mut served_this_tick = 0u32;
        let mut coalesced_this_tick = 0u32;
        let mut sharded_frames: Vec<Vec<(Frame, bool)>> = match &self.node {
            Node::Single { .. } => Vec::new(),
            Node::Sharded(_) => vec![Vec::new(); n],
        };
        for id in 0..n {
            let take = self.queues[id].len().min(quota);
            for j in 0..take {
                let timed = self.queues[id].pop_front().expect("planned drain underflow");
                self.served_meta.push((timed.arrived_tick, timed.arrived_at));
                if j + 1 == take {
                    served_this_tick += 1;
                    if adapt {
                        self.counters.served_full += 1;
                        self.per_stream[id].served_full += 1;
                    } else {
                        self.counters.served_degraded += 1;
                        self.per_stream[id].served_degraded += 1;
                    }
                } else {
                    coalesced_this_tick += 1;
                    self.counters.coalesced += 1;
                    self.per_stream[id].coalesced += 1;
                }
                match &mut self.node {
                    Node::Single { feeds, .. } => {
                        feeds[id].borrow_mut().push_back((timed.frame, timed.label));
                    }
                    Node::Sharded(_) => sharded_frames[id].push((timed.frame, timed.label)),
                }
            }
            self.plans.push(StreamPlan { ingest: take, score: take > 0, adapt: adapt && take > 0 });
        }
        let scores = match &mut self.node {
            Node::Single { rt, .. } => rt.tick_with_plan(&self.plans),
            Node::Sharded(rt) => rt.tick_planned(sharded_frames, &self.plans),
        };

        // Phase 5 — account: latencies (service included), decision log,
        // point-in-time queue level. The balance identity holds here and
        // after every future tick.
        for &(arrived_tick, arrived_at) in &self.served_meta {
            self.wait_ticks.record(now - arrived_tick);
            self.latency_nanos.record(arrived_at.elapsed().as_nanos() as u64);
        }
        self.counters.queued = self.queues.iter().map(|q| q.len()).sum();
        self.counters.ticks += 1;
        self.decisions.push(TickDecision {
            tick: now,
            level,
            max_depth: max_depth as u32,
            served: served_this_tick,
            coalesced: coalesced_this_tick,
            shed: shed_this_tick,
        });
        debug_assert!(self.counters.balanced(), "load accounting unbalanced at tick {now}");
        self.tick += 1;
        scores
    }

    /// Runs `ticks` loaded rounds, returning per-stream score sequences
    /// (`result[stream][tick]`; `None` = nothing served that tick).
    pub fn run(&mut self, ticks: usize) -> Vec<Vec<Option<f32>>> {
        let mut out = vec![Vec::with_capacity(ticks); self.sources.len()];
        for _ in 0..ticks {
            for (stream, score) in self.tick().into_iter().enumerate() {
                out[stream].push(score);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_pure_and_order_independent() {
        let generator = LoadGenerator { pattern: ArrivalPattern::Poisson { rate: 1.3 }, seed: 42 };
        // Query cells in two different orders; every cell answers the same.
        let mut forward = Vec::new();
        for tick in 0..50u64 {
            for stream in 0..4u64 {
                forward.push(generator.arrivals(tick, stream));
            }
        }
        let mut backward = Vec::new();
        for tick in (0..50u64).rev() {
            for stream in (0..4u64).rev() {
                backward.push(generator.arrivals(tick, stream));
            }
        }
        backward.reverse();
        assert_eq!(forward, backward);
        assert_ne!(
            forward,
            vec![0; forward.len()],
            "rate 1.3 over 200 cells should produce arrivals"
        );
    }

    #[test]
    fn poisson_mean_is_roughly_rate() {
        let generator = LoadGenerator { pattern: ArrivalPattern::Poisson { rate: 2.0 }, seed: 7 };
        let total: u32 = (0..2000u64).map(|t| generator.arrivals(t, 0)).sum();
        let mean = total as f64 / 2000.0;
        assert!((1.8..2.2).contains(&mean), "poisson mean {mean} far from rate 2.0");
    }

    #[test]
    fn bursty_rate_alternates() {
        let p =
            ArrivalPattern::Bursty { on_ticks: 3, off_ticks: 5, burst_rate: 4.0, base_rate: 0.5 };
        for period in 0..3u64 {
            let base = period * 8;
            for t in 0..3 {
                assert_eq!(p.rate_at(base + t), 4.0);
            }
            for t in 3..8 {
                assert_eq!(p.rate_at(base + t), 0.5);
            }
        }
    }

    #[test]
    fn ramp_is_monotone_and_capped() {
        let p = ArrivalPattern::Ramp { base_rate: 0.2, slope: 0.1, peak_rate: 1.0 };
        let mut prev = 0.0;
        for t in 0..30u64 {
            let r = p.rate_at(t);
            assert!(r >= prev, "ramp regressed at tick {t}");
            assert!(r <= 1.0 + 1e-12, "ramp exceeded its peak at tick {t}");
            prev = r;
        }
        assert_eq!(p.rate_at(1000), 1.0);
    }

    #[test]
    fn presets_round_trip_names() {
        for name in ["poisson", "bursty", "ramp"] {
            let p = ArrivalPattern::preset(name).expect("known preset");
            assert_eq!(p.name(), name);
        }
        assert!(ArrivalPattern::preset("tsunami").is_none());
    }
}
