//! The session tier: serve far more *registered* streams than fit in RAM.
//!
//! [`MultiStreamRuntime`](crate::MultiStreamRuntime) keeps every stream's
//! session resident, which is right for a camera rack but wrong for the
//! ROADMAP's "millions of users": most registered sessions are idle at any
//! instant. [`SessionTier`] keeps only a bounded LRU working set of live
//! `(Session, ContinuousAdapter)` pairs resident; everything beyond the cap
//! is serialized to a disk spool via the delta checkpoints of
//! [`akg_core::persist`] (an overlay session's checkpoint is its adapted-row
//! delta plus adapter state — a few KB, not the full table) and rehydrated on
//! the session's next frame. Registration itself is lazy: a registered-but-
//! never-served session costs one registry entry and zero engine state.
//!
//! The recovery contract carries over from the persistence layer:
//! evict → rehydrate → continue is bit-identical to never evicting
//! (`tests/tier.rs` enforces this under both backends), so the tier is
//! purely a memory/latency trade — resume latency is measured per
//! rehydration into a [`LatencyHistogram`].

use crate::slo::LatencyHistogram;
use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
use akg_core::engine::{Engine, Session};
use akg_core::persist::{self, SessionCheckpoint};
use akg_data::Frame;
use serde::Serialize;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Instant;

/// Identifies a registered session within its tier (dense, 0-based).
pub type SessionId = usize;

/// Session-tier sizing and spool placement.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Maximum number of sessions kept resident (the live working set).
    /// Serving a session while the set is full evicts the least recently
    /// used resident to the spool first.
    pub max_resident: usize,
    /// Directory the tier spools cold sessions into (one JSON checkpoint
    /// per evicted session). Created on construction.
    pub spool_dir: PathBuf,
}

impl TierConfig {
    /// A tier bounded to `max_resident` sessions, spooling under the OS
    /// temp directory in a per-process subdirectory (collision-free across
    /// concurrent bench runs).
    pub fn bounded(max_resident: usize) -> Self {
        let spool_dir =
            std::env::temp_dir().join(format!("akg-session-tier-{}", std::process::id()));
        TierConfig { max_resident, spool_dir }
    }
}

/// Lifetime counters of one tier (all deterministic given the serve order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TierCounters {
    /// Sessions served for the first time (lazy materialization).
    pub cold_starts: usize,
    /// Residents serialized to the spool to make room.
    pub evictions: usize,
    /// Spooled sessions read back and restored on a frame's arrival.
    pub rehydrations: usize,
    /// Rehydration attempts that failed validation or I/O. The acceptance
    /// gate for the session bench is that this stays zero.
    pub rehydration_failures: usize,
}

/// One registered session's tier-side state.
#[derive(Debug)]
enum SlotState {
    /// Registered, never served: no engine state exists yet.
    Fresh,
    /// Live in the working set.
    Resident(Box<ResidentSession>),
    /// Serialized to the spool file for this id.
    Spooled,
}

#[derive(Debug)]
struct ResidentSession {
    session: Session,
    adapter: ContinuousAdapter,
}

#[derive(Debug)]
struct Slot {
    frame_seed: u64,
    adapt: AdaptConfig,
    state: SlotState,
}

/// An LRU-evicting tier of serving sessions over one shared [`Engine`].
#[derive(Debug)]
pub struct SessionTier {
    engine: Engine,
    cfg: TierConfig,
    slots: Vec<Slot>,
    /// Resident ids, least recently used first.
    lru: VecDeque<SessionId>,
    counters: TierCounters,
    resume_latency: LatencyHistogram,
}

impl SessionTier {
    /// Creates an empty tier around `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_resident == 0` (nothing could ever be served) or
    /// the spool directory cannot be created.
    pub fn new(engine: Engine, cfg: TierConfig) -> Self {
        assert!(cfg.max_resident > 0, "SessionTier: max_resident must be positive");
        std::fs::create_dir_all(&cfg.spool_dir).expect("SessionTier: create spool dir");
        SessionTier {
            engine,
            cfg,
            slots: Vec::new(),
            lru: VecDeque::new(),
            counters: TierCounters::default(),
            resume_latency: LatencyHistogram::new(),
        }
    }

    /// Registers a session (lazily — no engine state is built until its
    /// first frame) and returns its id.
    pub fn register(&mut self, frame_seed: u64, adapt: AdaptConfig) -> SessionId {
        let id = self.slots.len();
        self.slots.push(Slot { frame_seed, adapt, state: SlotState::Fresh });
        id
    }

    /// Serves one frame to session `id`: materializes or rehydrates the
    /// session if it is not resident (evicting the LRU resident beyond the
    /// cap), scores the frame, and runs the session's adaptation loop —
    /// exactly the per-frame path a permanently resident stream takes, so
    /// scores are unaffected by tier churn.
    ///
    /// # Errors
    ///
    /// Returns a message when `id` is unknown, the frame fails validation,
    /// or a spooled checkpoint cannot be read back (counted in
    /// [`TierCounters::rehydration_failures`]).
    pub fn serve_frame(&mut self, id: SessionId, frame: &Frame) -> Result<f32, String> {
        if id >= self.slots.len() {
            return Err(format!("SessionTier: unknown session {id}"));
        }
        frame.validate().map_err(|e| format!("SessionTier: invalid frame: {e:?}"))?;
        self.ensure_resident(id)?;
        self.touch(id);
        let slot = &mut self.slots[id];
        let SlotState::Resident(resident) = &mut slot.state else {
            unreachable!("ensure_resident left session {id} non-resident");
        };
        Ok(resident.adapter.observe_stream(&self.engine, &mut resident.session, frame))
    }

    /// Makes `id` resident (cold start or rehydration), evicting beyond the
    /// cap first so peak residency never exceeds `max_resident`.
    fn ensure_resident(&mut self, id: SessionId) -> Result<(), String> {
        if matches!(self.slots[id].state, SlotState::Resident(_)) {
            return Ok(());
        }
        while self.lru.len() >= self.cfg.max_resident {
            let victim = self.lru.pop_front().expect("LRU non-empty while over cap");
            self.evict(victim);
        }
        let (frame_seed, adapt) = (self.slots[id].frame_seed, self.slots[id].adapt);
        let resident = match self.slots[id].state {
            SlotState::Fresh => {
                self.counters.cold_starts += 1;
                let mut session = self.engine.new_session(frame_seed);
                let adapter = ContinuousAdapter::attach(&self.engine, &mut session, adapt);
                ResidentSession { session, adapter }
            }
            SlotState::Spooled => {
                let start = Instant::now();
                let restored = self.rehydrate(id, frame_seed, adapt);
                match restored {
                    Ok(resident) => {
                        self.counters.rehydrations += 1;
                        self.resume_latency.record(start.elapsed().as_nanos() as u64);
                        resident
                    }
                    Err(e) => {
                        self.counters.rehydration_failures += 1;
                        return Err(e);
                    }
                }
            }
            SlotState::Resident(_) => unreachable!("checked above"),
        };
        self.slots[id].state = SlotState::Resident(Box::new(resident));
        self.lru.push_back(id);
        Ok(())
    }

    /// Reads a spooled checkpoint back into a fresh overlay session.
    fn rehydrate(
        &self,
        id: SessionId,
        frame_seed: u64,
        adapt: AdaptConfig,
    ) -> Result<ResidentSession, String> {
        let path = self.spool_path(id);
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("SessionTier: read {}: {e}", path.display()))?;
        let cp: SessionCheckpoint = serde_json::from_str(&json)
            .map_err(|e| format!("SessionTier: parse {}: {e}", path.display()))?;
        let mut session = self.engine.new_session(frame_seed);
        let adapter = persist::restore_session(&self.engine, &mut session, adapt, &cp)?;
        Ok(ResidentSession { session, adapter })
    }

    /// Serializes a resident session to its spool file and drops it.
    fn evict(&mut self, id: SessionId) {
        let state = std::mem::replace(&mut self.slots[id].state, SlotState::Spooled);
        let SlotState::Resident(resident) = state else {
            unreachable!("evicting non-resident session {id}");
        };
        let cp = persist::checkpoint_session(&resident.session, &resident.adapter);
        let json = serde_json::to_string(&cp).expect("session checkpoint serializes");
        std::fs::write(self.spool_path(id), json).expect("SessionTier: write spool file");
        self.counters.evictions += 1;
    }

    /// Moves `id` to the most-recently-used end of the LRU order.
    fn touch(&mut self, id: SessionId) {
        if self.lru.back() == Some(&id) {
            return;
        }
        if let Some(pos) = self.lru.iter().position(|&r| r == id) {
            self.lru.remove(pos);
            self.lru.push_back(id);
        }
    }

    fn spool_path(&self, id: SessionId) -> PathBuf {
        self.cfg.spool_dir.join(format!("session-{id}.json"))
    }

    /// Total sessions registered (resident + spooled + never served).
    pub fn registered_count(&self) -> usize {
        self.slots.len()
    }

    /// Sessions currently resident (bounded by `max_resident`).
    pub fn resident_count(&self) -> usize {
        self.lru.len()
    }

    /// Lifetime tier counters.
    pub fn counters(&self) -> TierCounters {
        self.counters
    }

    /// Wall-clock rehydration latencies, one sample per rehydration.
    pub fn resume_latency(&self) -> &LatencyHistogram {
        &self.resume_latency
    }

    /// Estimated private heap bytes of all resident sessions (see
    /// [`Session::state_bytes`]) — the tier's per-session RAM cost; the
    /// engine and spool are excluded.
    pub fn resident_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| match &s.state {
                SlotState::Resident(r) => Some(r.session.state_bytes()),
                _ => None,
            })
            .sum()
    }

    /// The serialized size of session `id`'s current state in bytes (its
    /// spool-file size if spooled, a fresh capture if resident, `None` if
    /// never served).
    pub fn checkpoint_bytes(&self, id: SessionId) -> Option<usize> {
        match &self.slots.get(id)?.state {
            SlotState::Fresh => None,
            SlotState::Resident(r) => {
                let cp = persist::checkpoint_session(&r.session, &r.adapter);
                Some(serde_json::to_string(&cp).expect("session checkpoint serializes").len())
            }
            SlotState::Spooled => {
                std::fs::metadata(self.spool_path(id)).ok().map(|m| m.len() as usize)
            }
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Removes the tier's spool directory (best-effort; benches call this
    /// so repeated runs do not accumulate spool files).
    pub fn clear_spool(&self) {
        let _ = std::fs::remove_dir_all(&self.cfg.spool_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_core::pipeline::SystemConfig;
    use akg_kg::AnomalyClass;

    fn tier(max_resident: usize) -> SessionTier {
        let engine = Engine::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        let mut cfg = TierConfig::bounded(max_resident);
        cfg.spool_dir = cfg.spool_dir.join(format!("unit-{max_resident}"));
        SessionTier::new(engine, cfg)
    }

    fn frame() -> Frame {
        Frame { concepts: vec![("walking".into(), 1.0)], label: None }
    }

    #[test]
    fn residency_stays_bounded_and_counters_track() {
        let mut t = tier(2);
        let ids: Vec<_> = (0..4).map(|i| t.register(i as u64, AdaptConfig::default())).collect();
        assert_eq!(t.registered_count(), 4);
        assert_eq!(t.resident_count(), 0, "registration must be lazy");
        for &id in &ids {
            t.serve_frame(id, &frame()).unwrap();
            assert!(t.resident_count() <= 2);
        }
        let c = t.counters();
        assert_eq!(c.cold_starts, 4);
        assert_eq!(c.evictions, 2);
        assert_eq!(c.rehydration_failures, 0);
        // returning to an evicted session rehydrates it
        t.serve_frame(ids[0], &frame()).unwrap();
        assert_eq!(t.counters().rehydrations, 1);
        assert_eq!(t.resume_latency().count(), 1);
        t.clear_spool();
    }

    #[test]
    fn unknown_session_and_invalid_frame_are_rejected() {
        let mut t = tier(1);
        assert!(t.serve_frame(0, &frame()).is_err());
        let id = t.register(0, AdaptConfig::default());
        let bad = Frame { concepts: vec![("".into(), 1.0)], label: None };
        assert!(t.serve_frame(id, &bad).is_err());
        assert_eq!(t.counters(), TierCounters::default());
        t.clear_spool();
    }

    #[test]
    #[should_panic(expected = "max_resident must be positive")]
    fn zero_capacity_is_rejected() {
        let engine = Engine::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        let _ = SessionTier::new(engine, TierConfig::bounded(0));
    }
}
