//! # akg-runtime
//!
//! Multi-stream batched serving for the deployed anomaly detector: one
//! shared, immutable [`Engine`](akg_core::engine::Engine) scores `N`
//! independent frame streams, each with its own isolated
//! [`Session`](akg_core::engine::Session) and continuous-adaptation loop.
//!
//! The paper's deployment stage (Fig. 2 C) is continuous scoring of *live*
//! streams on an edge device; a real installation has many cameras per
//! device. The pre-split `MissionSystem` could serve exactly one. This
//! runtime round-robins frames from many [`FrameSource`]s, forms
//! cross-stream batches of score windows (up to
//! [`RuntimeConfig::max_batch`]), dispatches them through the engine's
//! batched forward — one matmul per GNN layer for the whole batch instead of
//! one per window — and routes each score back into its stream's adaptation
//! loop.
//!
//! ## Isolation model (session-local deltas)
//!
//! Per-stream KG adaptation must not leak across streams. Of the two
//! admissible designs — (a) session-local token-table deltas, (b) a
//! serialized shared-write step — this runtime implements **(a)**, made
//! literal since the copy-on-write refactor: every session holds a sparse
//! overlay of adapted rows over the engine's immutable trained table and
//! shares the engine's tokenized KGs until its first structural edit. A
//! stream's pseudo-anomaly updates and prune/create restructurings
//! materialize and touch only its own rows/copies; the engine's artifacts
//! are never written after build. There is no shared *mutable* state between
//! streams at all, so scheduling order cannot change results, and batched
//! serving is **bit-identical** to running every stream alone through the
//! legacy single-stream path (`tests/equivalence.rs` proves this at batch
//! sizes 1, 4, and 16; `tests/overlay_equivalence.rs` in `akg-core` proves
//! overlay ≡ dense fork). For serving more *registered* sessions than fit in
//! RAM, the [`tier`] module bounds residency with LRU eviction to a disk
//! spool.
//!
//! ## Quick start
//!
//! ```
//! use akg_core::adapt::AdaptConfig;
//! use akg_core::engine::Engine;
//! use akg_core::pipeline::SystemConfig;
//! use akg_kg::AnomalyClass;
//! use akg_runtime::{FnSource, MultiStreamRuntime, RuntimeConfig};
//!
//! let engine = Engine::build(&[AnomalyClass::Stealing], &SystemConfig::default());
//! let mut runtime = MultiStreamRuntime::new(engine, RuntimeConfig::default());
//! // Two synthetic one-frame-per-tick sources:
//! let frame = akg_data::Frame { concepts: vec![("walking".into(), 1.0)], label: None };
//! for i in 0..2 {
//!     let f = frame.clone();
//!     runtime.add_stream(FnSource(move || (f.clone(), false)), i, AdaptConfig::default());
//! }
//! let scores = runtime.tick();
//! assert_eq!(scores.len(), 2);
//! assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
//! ```
//!
//! ## Scaling out: the sharded runtime
//!
//! [`MultiStreamRuntime`] is single-core by design (tensors are `Rc`-based).
//! [`ShardedRuntime`] (the [`shard`] module) partitions the streams across N
//! worker threads — each running its own `MultiStreamRuntime` over its
//! shard — wired by bounded [`spsc`] queues, with a test-enforced contract
//! that sharding never changes any stream's results bit-for-bit.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod fault;
pub mod load;
pub mod shard;
pub mod slo;
pub mod spsc;
pub mod tier;

pub use checkpoint::{CheckpointRing, RecoveryStats, ShardCheckpoint, StreamCheckpoint};
pub use fault::{corrupt_frame, ChaosConfig, CorruptionKind, CrashStyle, FaultPlan, ScriptedFault};
pub use load::{ArrivalPattern, IdleSource, LoadConfig, LoadGenerator, LoadedRuntime};
pub use shard::{
    EngineSpec, OwnedShardedRuntime, ShardSnapshot, ShardedConfig, ShardedRuntime, StreamSnapshot,
};
pub use slo::{
    DegradeLevel, DegradePolicy, LatencyHistogram, LatencySummary, LoadCounters, StreamLoadStats,
    TickDecision,
};
pub use tier::{SessionTier, TierConfig, TierCounters};

use akg_core::adapt::{AdaptConfig, AdaptEvent, ContinuousAdapter};
use akg_core::engine::{Engine, Session};
use akg_data::{AdaptationStream, Frame};
use akg_tensor::{Workspace, WorkspaceStats};
use serde::Serialize;

/// A source of deployment frames: anything that can hand the runtime one
/// `(frame, is_anomalous)` pair per tick. The label rides along for
/// evaluation harnesses; the serving path itself never reads it.
pub trait FrameSource {
    /// Produces the stream's next frame.
    fn next_frame(&mut self) -> (Frame, bool);
}

impl FrameSource for AdaptationStream<'_> {
    fn next_frame(&mut self) -> (Frame, bool) {
        AdaptationStream::next_frame(self)
    }
}

/// Adapts a closure into a [`FrameSource`] (handy for tests and synthetic
/// feeds).
#[derive(Debug)]
pub struct FnSource<F>(pub F);

impl<F: FnMut() -> (Frame, bool)> FrameSource for FnSource<F> {
    fn next_frame(&mut self) -> (Frame, bool) {
        (self.0)()
    }
}

impl FrameSource for Box<dyn FrameSource> {
    fn next_frame(&mut self) -> (Frame, bool) {
        self.as_mut().next_frame()
    }
}

/// Runtime scheduling knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Largest cross-stream batch one dispatch may carry; a tick over more
    /// streams splits into ⌈N / max_batch⌉ dispatches.
    pub max_batch: usize,
    /// When `false`, every window is scored individually through the legacy
    /// single-window path (the measurement baseline for `BENCH_serve.json`).
    /// Scores are bit-identical either way.
    pub batched: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { max_batch: 16, batched: true }
    }
}

/// Monotonic throughput counters, serializable for the perf harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServeCounters {
    /// Frames pulled, scored, and routed back (across all streams).
    pub frames: usize,
    /// Scheduler rounds completed.
    pub ticks: usize,
    /// Scoring dispatches issued (batched calls or single-window calls).
    pub dispatches: usize,
    /// Largest batch actually dispatched.
    pub max_batch_seen: usize,
    /// Token-update adaptation events across all streams.
    pub token_updates: usize,
    /// Structural node replacements across all streams.
    pub node_replacements: usize,
    /// Frames rejected at ingest because they failed
    /// [`akg_data::Frame::validate`] (non-finite or out-of-range weights) —
    /// counted instead of ingested, so corrupt input can never poison a
    /// session's adapted table.
    pub rejected: usize,
}

/// Identifier of a stream registered with [`MultiStreamRuntime::add_stream`]
/// (its index, stable for the runtime's lifetime).
pub type StreamId = usize;

/// Per-stream directive for one [`MultiStreamRuntime::tick_with_plan`]
/// round — the execution mechanism under the latency-SLO load harness's
/// degrade ladder ([`load`]): a pressured tick may ingest several queued
/// frames for a stream at once (batch-coalescing), score only the streams
/// that actually received work, and suppress the adaptation check while
/// keeping drift statistics live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPlan {
    /// Frames to pull from the stream's source and ingest into its rolling
    /// window this tick (0 = the stream is idle this round).
    pub ingest: usize,
    /// Whether to score the stream's rolling window after ingest. A stream
    /// that has never ingested a valid frame has no window yet and is
    /// skipped (`None`) even when this is set.
    pub score: bool,
    /// Whether the score feeds the full adaptation check
    /// ([`ContinuousAdapter::complete_frame`]) or only the drift tracker
    /// ([`ContinuousAdapter::complete_frame_skip_adapt`] — the "skip
    /// adaptation" degrade rung).
    pub adapt: bool,
}

impl Default for StreamPlan {
    /// The unloaded steady-state plan: one frame in, one score out, full
    /// adaptation — exactly what [`MultiStreamRuntime::tick`] executes for
    /// every stream.
    fn default() -> Self {
        StreamPlan { ingest: 1, score: true, adapt: true }
    }
}

/// A runtime over owned dataset-backed streams
/// ([`akg_data::OwnedAdaptationStream`]) — the common deployment shape: the
/// runtime owns its feeds outright.
pub type OwnedStreamRuntime = MultiStreamRuntime<akg_data::OwnedAdaptationStream>;

struct StreamSlot<S> {
    source: S,
    session: Session,
    adapter: ContinuousAdapter,
    /// The frame seed the stream was registered with — recorded so a
    /// recovery checkpoint can reopen the stream against a fresh engine.
    frame_seed: u64,
    /// Lifetime token-update / node-replacement counts carried over from a
    /// restored checkpoint (the adapter's event log restarts empty after a
    /// restore; totals must not).
    token_updates_base: usize,
    replacements_base: usize,
    /// Frames rejected at ingest validation for this stream.
    rejected: usize,
}

/// The multi-stream serving loop: a shared [`Engine`], one
/// [`StreamSlot`]-worth of isolated state per stream, and a round-robin
/// batching scheduler.
pub struct MultiStreamRuntime<S: FrameSource> {
    engine: Engine,
    slots: Vec<StreamSlot<S>>,
    config: RuntimeConfig,
    counters: ServeCounters,
    /// One inference workspace per runtime, leased across every batch of
    /// every tick: batched scoring runs on the inference data plane with a
    /// fixed steady-state memory high-water mark and no per-frame
    /// allocation.
    workspace: Workspace,
    /// Reused per-dispatch score output (cleared per batch).
    score_scratch: Vec<f32>,
}

impl<S: FrameSource> MultiStreamRuntime<S> {
    /// Creates an empty runtime around a built (and typically trained)
    /// engine.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch == 0`.
    pub fn new(engine: Engine, config: RuntimeConfig) -> Self {
        assert!(config.max_batch > 0, "RuntimeConfig::max_batch must be positive");
        MultiStreamRuntime {
            engine,
            slots: Vec::new(),
            config,
            counters: ServeCounters::default(),
            workspace: Workspace::new(),
            score_scratch: Vec::new(),
        }
    }

    /// Registers a stream: forks a fresh session off the engine (seeded with
    /// `frame_seed`, so the stream's embedding noise is reproducible) and
    /// attaches its private continuous-adaptation loop. Returns the stream's
    /// id.
    pub fn add_stream(&mut self, source: S, frame_seed: u64, adapt: AdaptConfig) -> StreamId {
        let mut session = self.engine.new_session(frame_seed);
        let adapter = ContinuousAdapter::attach(&self.engine, &mut session, adapt);
        self.slots.push(StreamSlot {
            source,
            session,
            adapter,
            frame_seed,
            token_updates_base: 0,
            replacements_base: 0,
            rejected: 0,
        });
        self.slots.len() - 1
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.slots.len()
    }

    /// The shared engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A stream's session (its private adaptive state).
    pub fn session(&self, id: StreamId) -> &Session {
        &self.slots[id].session
    }

    /// A stream's adaptation events so far.
    pub fn adapt_events(&self, id: StreamId) -> &[AdaptEvent] {
        self.slots[id].adapter.events()
    }

    /// Mutable access to a stream's frame source (e.g. to trigger a trend
    /// shift mid-run).
    pub fn source_mut(&mut self, id: StreamId) -> &mut S {
        &mut self.slots[id].source
    }

    /// Throughput counters since construction.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// Lifetime `(token_updates, node_replacements)` totals for one stream,
    /// including counts that predate a checkpoint restore (the adapter's
    /// event log restarts empty after a restore; these totals do not).
    pub fn stream_event_totals(&self, id: StreamId) -> (usize, usize) {
        let slot = &self.slots[id];
        let (updates, replaces) = event_counts(slot.adapter.events());
        (slot.token_updates_base + updates, slot.replacements_base + replaces)
    }

    /// Frames rejected at ingest validation for one stream.
    pub fn rejected_frames(&self, id: StreamId) -> usize {
        self.slots[id].rejected
    }

    /// Captures one stream's full recovery record: session state, adapter
    /// state, registration identity, and lifetime event totals.
    pub fn checkpoint_stream(&self, id: StreamId) -> StreamCheckpoint {
        let slot = &self.slots[id];
        let (token_updates, replacements) = self.stream_event_totals(id);
        StreamCheckpoint {
            frame_seed: slot.frame_seed,
            adapt: *slot.adapter.config(),
            session: akg_core::persist::checkpoint_session(&slot.session, &slot.adapter),
            token_updates,
            replacements,
        }
    }

    /// Restores a stream's session and adapter from a checkpoint captured
    /// by [`MultiStreamRuntime::checkpoint_stream`] (on this runtime or a
    /// bit-identical replica). The stream must already be registered — this
    /// overwrites its adaptive state, not its source.
    ///
    /// # Errors
    ///
    /// Returns a message if the checkpoint fails validation against the
    /// stream's session; the session is left untouched in that case.
    pub fn restore_stream_state(
        &mut self,
        id: StreamId,
        cp: &StreamCheckpoint,
    ) -> Result<(), String> {
        let slot = &mut self.slots[id];
        let adapter = akg_core::persist::restore_session(
            &self.engine,
            &mut slot.session,
            cp.adapt,
            &cp.session,
        )?;
        slot.adapter = adapter;
        slot.frame_seed = cp.frame_seed;
        slot.token_updates_base = cp.token_updates;
        slot.replacements_base = cp.replacements;
        Ok(())
    }

    /// Overwrites the runtime's aggregate counters — the recovery path sets
    /// them back to the checkpoint boundary before replay re-increments
    /// them, so a recovered worker's counters match the undisturbed run.
    pub(crate) fn restore_counters(&mut self, counters: ServeCounters) {
        self.counters = counters;
    }

    /// Allocation counters of the runtime's shared inference workspace.
    /// The high-water mark ([`WorkspaceStats::high_water_bytes`])
    /// stabilizes once every serving shape has been seen — the fixed-memory
    /// property the soak test asserts.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// One scheduler round: pulls one frame from every stream (round-robin),
    /// embeds each through its own session, scores all windows — batched
    /// across streams up to `max_batch`, or one by one in baseline mode —
    /// and routes every score back into its stream's adaptation loop.
    /// Returns the per-stream scores, indexed by [`StreamId`].
    ///
    /// Adaptation runs strictly per stream against session-local state (see
    /// the crate docs' isolation model), so the batch composition never
    /// influences any stream's results.
    ///
    /// # Panics
    ///
    /// Panics if no streams are registered.
    pub fn tick(&mut self) -> Vec<f32> {
        let plans = vec![StreamPlan::default(); self.slots.len()];
        self.tick_with_plan(&plans)
            .into_iter()
            .map(|s| s.expect("default plan scores every stream"))
            .collect()
    }

    /// The plan-driven generalization of [`MultiStreamRuntime::tick`]: one
    /// scheduler round where every stream follows its own [`StreamPlan`] —
    /// ingest 0..k frames, optionally score, optionally suppress the
    /// adaptation check. [`MultiStreamRuntime::tick`] is exactly this with
    /// [`StreamPlan::default`] for every stream; the latency-SLO load
    /// harness ([`load::LoadedRuntime`]) is the intended caller of
    /// non-default plans, and every plan it issues is a deterministic pure
    /// function of queue state (see [`slo::DegradePolicy`]).
    ///
    /// Returns per-stream scores indexed by [`StreamId`]; `None` marks a
    /// stream whose plan did not score this round — or one that has never
    /// ingested a valid frame (there is no window to score yet).
    ///
    /// # Panics
    ///
    /// Panics if no streams are registered or if `plans.len()` differs from
    /// the stream count.
    pub fn tick_with_plan(&mut self, plans: &[StreamPlan]) -> Vec<Option<f32>> {
        assert!(!self.slots.is_empty(), "tick: no streams registered");
        assert_eq!(plans.len(), self.slots.len(), "tick_with_plan: one plan per stream");
        let n = self.slots.len();
        let window_len = self.engine.model.config().window;
        // Phase 1 — ingest: `plan.ingest` frames per stream, embedded
        // through the stream's own RNG into its rolling buffer. No windows
        // are materialized: scoring borrows the buffers in place (phase 2),
        // so the per-frame window clones of the pre-data-plane runtime are
        // gone and the tick's footprint is fixed.
        let mut ingested = 0usize;
        let mut rejected = 0usize;
        for (slot, plan) in self.slots.iter_mut().zip(plans) {
            for _ in 0..plan.ingest {
                let (frame, _label) = slot.source.next_frame();
                // Ingest admission: a frame with a NaN/inf/out-of-range
                // weight is rejected and *counted* — never embedded, so it
                // cannot poison the session's adapted table. Rejection is a
                // pure function of the frame, so single-node and sharded
                // serving reject identically.
                if frame.validate().is_err() {
                    slot.rejected += 1;
                    rejected += 1;
                    continue;
                }
                slot.adapter.ingest_frame(&self.engine, &mut slot.session, &frame);
                ingested += 1;
            }
        }
        // Phase 2 — score the planned streams: cross-stream batches (or the
        // per-frame baseline), through the inference data plane with the
        // runtime's shared workspace. One flat ref buffer carries a whole
        // batch's windows (the j-th scored stream's window is `window_len`
        // consecutive slices).
        // A stream whose frames have all been rejected has no window yet —
        // it is skipped (`None`), not scored against nothing.
        let active: Vec<StreamId> =
            (0..n).filter(|&i| plans[i].score && self.slots[i].adapter.has_window()).collect();
        let mut scores: Vec<Option<f32>> = vec![None; n];
        if self.config.batched {
            for chunk in active.chunks(self.config.max_batch) {
                let mut flat_refs: Vec<&[f32]> = Vec::with_capacity(chunk.len() * window_len);
                let mut one: Vec<&[f32]> = Vec::with_capacity(window_len);
                for &i in chunk {
                    self.slots[i].adapter.fill_window_refs(&self.engine, &mut one);
                    flat_refs.extend_from_slice(&one);
                }
                let batch: Vec<(&Session, &[&[f32]])> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| {
                        let w = &flat_refs[j * window_len..(j + 1) * window_len];
                        (&self.slots[i].session, w)
                    })
                    .collect();
                self.engine.score_windows_batch_refs(
                    &batch,
                    &mut self.workspace,
                    &mut self.score_scratch,
                );
                for (j, &i) in chunk.iter().enumerate() {
                    scores[i] = Some(self.score_scratch[j]);
                }
                self.counters.dispatches += 1;
                self.counters.max_batch_seen = self.counters.max_batch_seen.max(chunk.len());
            }
        } else {
            let mut one: Vec<&[f32]> = Vec::with_capacity(window_len);
            for &i in &active {
                let slot = &self.slots[i];
                slot.adapter.fill_window_refs(&self.engine, &mut one);
                scores[i] = Some(self.engine.score_window_refs(&slot.session, &one));
                self.counters.dispatches += 1;
                self.counters.max_batch_seen = self.counters.max_batch_seen.max(1);
            }
        }
        // Phase 3 — complete: scores feed each scored stream's tracker; a
        // plan with `adapt` runs the full check (any triggered token update
        // / restructure touches only that stream's session), one without it
        // takes the degraded skip-adapt path. Only the events appended by
        // this frame are scanned, so long-lived deployments don't pay
        // O(history) per tick.
        for &i in &active {
            let score = scores[i].expect("active stream was scored");
            let slot = &mut self.slots[i];
            if plans[i].adapt {
                let events_before = slot.adapter.events().len();
                slot.adapter.complete_frame(&self.engine, &mut slot.session, score);
                let (updates, replaces) = event_counts(&slot.adapter.events()[events_before..]);
                self.counters.token_updates += updates;
                self.counters.node_replacements += replaces;
            } else {
                slot.adapter.complete_frame_skip_adapt(score);
            }
        }
        self.counters.frames += ingested;
        self.counters.rejected += rejected;
        self.counters.ticks += 1;
        scores
    }

    /// Runs `ticks` scheduler rounds, returning the per-stream score
    /// sequences (`result[stream][tick]`).
    pub fn run(&mut self, ticks: usize) -> Vec<Vec<f32>> {
        let mut out = vec![Vec::with_capacity(ticks); self.slots.len()];
        for _ in 0..ticks {
            for (stream, score) in self.tick().into_iter().enumerate() {
                out[stream].push(score);
            }
        }
        out
    }
}

fn event_counts(events: &[AdaptEvent]) -> (usize, usize) {
    let updates = events.iter().filter(|e| matches!(e, AdaptEvent::TokenUpdate { .. })).count();
    let replaces = events.iter().filter(|e| matches!(e, AdaptEvent::NodeReplaced { .. })).count();
    (updates, replaces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_core::pipeline::SystemConfig;
    use akg_kg::AnomalyClass;

    fn frame(salt: usize) -> Frame {
        let concepts = if salt.is_multiple_of(3) {
            vec![("walking".into(), 1.0)]
        } else {
            vec![("person".into(), 0.8), ("vehicle".into(), 0.4)]
        };
        Frame { concepts, label: None }
    }

    fn runtime(config: RuntimeConfig) -> MultiStreamRuntime<Box<dyn FrameSource>> {
        let engine = Engine::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        MultiStreamRuntime::new(engine, config)
    }

    #[test]
    fn counters_track_ticks_and_batches() {
        let mut rt = runtime(RuntimeConfig { max_batch: 2, batched: true });
        for i in 0..5usize {
            let mut k = i;
            rt.add_stream(
                Box::new(FnSource(move || {
                    k += 1;
                    (frame(k), false)
                })) as Box<dyn FrameSource>,
                i as u64,
                AdaptConfig::default(),
            );
        }
        let scores = rt.run(3);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| s.len() == 3));
        let c = rt.counters();
        assert_eq!(c.frames, 15);
        assert_eq!(c.ticks, 3);
        // 5 streams at max_batch 2 -> 3 dispatches per tick
        assert_eq!(c.dispatches, 9);
        assert_eq!(c.max_batch_seen, 2);
    }

    #[test]
    fn per_frame_mode_matches_batched_mode() {
        let make = |batched| {
            let mut rt = runtime(RuntimeConfig { max_batch: 4, batched });
            for i in 0..3usize {
                let mut k = 7 * i;
                rt.add_stream(
                    Box::new(FnSource(move || {
                        k += 1;
                        (frame(k), false)
                    })) as Box<dyn FrameSource>,
                    i as u64,
                    AdaptConfig::default(),
                );
            }
            rt.run(4)
        };
        assert_eq!(make(true), make(false), "batched and per-frame scores diverged");
    }

    #[test]
    #[should_panic(expected = "no streams registered")]
    fn tick_requires_streams() {
        let mut rt = runtime(RuntimeConfig::default());
        let _ = rt.tick();
    }
}
