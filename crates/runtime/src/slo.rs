//! SLO instrumentation for loaded serving: fixed-bucket log-scale latency
//! histograms (p50/p99/p999 with **zero allocations per recorded frame**)
//! and the deterministic degrade ladder the bounded-ingest layer applies
//! under pressure.
//!
//! ## The degrade ladder
//!
//! A production edge deployment is judged on tail latency under bursty
//! arrivals, and when arrivals outrun the engine something must give. This
//! module makes the "something" explicit, ordered, and *deterministic*:
//!
//! | rung | trigger (deepest ingest queue) | what degrades |
//! |------|--------------------------------|---------------|
//! | [`DegradeLevel::Normal`]    | `< skip_adapt_depth` | nothing |
//! | [`DegradeLevel::SkipAdapt`] | `≥ skip_adapt_depth` | adaptation checks suppressed (scores still feed drift tracking) |
//! | [`DegradeLevel::Coalesce`]  | `≥ coalesce_depth`   | up to `coalesce_max` queued frames per stream drain into the rolling window per tick; only the newest is individually scored |
//! | [`DegradeLevel::Shed`]      | `≥ shed_depth`       | lowest-priority streams drop their oldest queued frames down to `shed_keep` |
//!
//! Every decision is a **pure function** of the observable queue state
//! (per-stream depths, stream ids, priorities) and the policy constants —
//! no wall clock, no RNG — so a loaded run is bit-reproducible and the
//! sharded runtime's equivalence contract extends to loaded serving:
//! sharded-under-load ≡ single-node-under-load including *which* frames
//! degrade ([`crate::load`] holds the whole decision loop on the
//! front-end; workers only execute).
//!
//! Accounting is exact: every offered frame ends in exactly one terminal
//! state ([`LoadCounters::balanced`]), so nothing is ever shed silently.

use serde::Serialize;

/// Number of exact low-value buckets (values `0..LINEAR_CUTOFF` map 1:1).
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power-of-two octave above the linear range.
const SUB_BUCKETS: usize = 16;
/// Octaves tracked above the linear range: values up to `2^32 - 1` land in
/// a sized bucket, anything larger saturates into the last one (4.29 s in
/// nanoseconds — far beyond any latency this runtime can produce without a
/// bug, and the percentile clamp to the observed max keeps even that case
/// honest).
const OCTAVES: usize = 28;
const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + OCTAVES * SUB_BUCKETS;

/// A fixed-bucket log-scale latency histogram: values `0..16` are exact,
/// larger values land in one of 16 sub-buckets per power-of-two octave
/// (relative quantization error ≤ 1/16 ≈ 6.25%). Recording is two array
/// index computations and an increment — **no allocation, no branch on
/// history** — so it sits directly on the per-frame serving hot path.
///
/// The histogram is unit-agnostic: the loaded runtime keeps one in ticks
/// (deterministic, asserted bit-equal across shard counts) and one in
/// nanoseconds (wall-clock, reporting only).
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("p999", &self.percentile(0.999))
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram (all buckets zero).
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one value. Allocation-free.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` until the first [`LatencyHistogram::record`].
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` (clamped to `[0, 1]`): the upper bound of
    /// the bucket holding the `⌈p·count⌉`-th smallest recorded value,
    /// clamped to the exact observed max — so `percentile(1.0) == max()`,
    /// values below 16 are exact, and larger values are overestimated by at
    /// most 6.25%. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs — the raw dump
    /// the perf harness's `--slo-out` writes for offline analysis. Cold
    /// path: allocates the output vector.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (Self::bucket_upper(idx).min(self.max), n))
            .collect()
    }

    fn bucket_index(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            return value as usize;
        }
        // value ≥ 16 ⇒ octave ≥ 4; the top bit selects the octave, the next
        // four bits the sub-bucket within it.
        let octave = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (octave - 4)) & 0xF) as usize;
        (LINEAR_CUTOFF as usize + (octave - 4) * SUB_BUCKETS + sub).min(NUM_BUCKETS - 1)
    }

    /// Largest value mapping to bucket `idx` (inclusive).
    fn bucket_upper(idx: usize) -> u64 {
        if idx < LINEAR_CUTOFF as usize {
            return idx as u64;
        }
        if idx == NUM_BUCKETS - 1 {
            return u64::MAX; // saturation bucket; callers clamp to max()
        }
        let octave = 4 + (idx - LINEAR_CUTOFF as usize) / SUB_BUCKETS;
        let sub = ((idx - LINEAR_CUTOFF as usize) % SUB_BUCKETS) as u64;
        (1u64 << octave) + ((sub + 1) << (octave - 4)) - 1
    }
}

/// Percentile summary of one [`LatencyHistogram`], in the histogram's unit
/// — the shape the perf harness serializes into `BENCH_serve.json`'s
/// schema v5 `latency` array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Values recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (needs ≥ 10k samples to resolve beyond p99 — see
    /// `docs/PERFORMANCE.md`).
    pub p999: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn of(hist: &LatencyHistogram) -> Self {
        LatencySummary {
            count: hist.count(),
            p50: hist.percentile(0.50),
            p99: hist.percentile(0.99),
            p999: hist.percentile(0.999),
            max: hist.max(),
            mean: hist.mean(),
        }
    }
}

/// The rungs of the degrade ladder, in escalation order (derives `Ord`:
/// `Normal < SkipAdapt < Coalesce < Shed`). See the module docs for what
/// each rung degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// No pressure: full scoring and adaptation.
    Normal,
    /// Adaptation checks suppressed; every frame still scored.
    SkipAdapt,
    /// Multiple queued frames drain per stream per tick; only the newest is
    /// individually scored (adaptation stays suppressed).
    Coalesce,
    /// Lowest-priority streams drop oldest queued frames (coalescing and
    /// adaptation suppression stay active).
    Shed,
}

impl DegradeLevel {
    /// All rungs in escalation order.
    pub const ALL: [DegradeLevel; 4] =
        [DegradeLevel::Normal, DegradeLevel::SkipAdapt, DegradeLevel::Coalesce, DegradeLevel::Shed];

    /// Index into per-level counter arrays (escalation order).
    pub fn index(self) -> usize {
        match self {
            DegradeLevel::Normal => 0,
            DegradeLevel::SkipAdapt => 1,
            DegradeLevel::Coalesce => 2,
            DegradeLevel::Shed => 3,
        }
    }

    /// Stable lower-case name (`"normal"`, `"skip_adapt"`, `"coalesce"`,
    /// `"shed"`).
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::SkipAdapt => "skip_adapt",
            DegradeLevel::Coalesce => "coalesce",
            DegradeLevel::Shed => "shed",
        }
    }
}

/// The deterministic shed/degrade policy: queue bounds and ladder
/// thresholds. All decisions derived from it are pure functions of queue
/// state (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Hard per-stream ingest bound: an arrival to a full queue is
    /// tail-dropped (counted in [`LoadCounters::overflow_dropped`] — the
    /// backstop the shed rung exists to keep cold).
    pub queue_capacity: usize,
    /// Deepest-queue depth at which adaptation checks are suppressed.
    pub skip_adapt_depth: usize,
    /// Deepest-queue depth at which queued frames start batch-coalescing.
    pub coalesce_depth: usize,
    /// Deepest-queue depth at which the shed rung fires.
    pub shed_depth: usize,
    /// Depth a shedding stream is trimmed down to (oldest frames first).
    pub shed_keep: usize,
    /// Most queued frames one stream may drain per coalesced tick.
    pub coalesce_max: usize,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            queue_capacity: 32,
            skip_adapt_depth: 4,
            coalesce_depth: 8,
            shed_depth: 16,
            shed_keep: 8,
            coalesce_max: 4,
        }
    }
}

impl DegradePolicy {
    /// Checks the policy's internal ordering invariants.
    ///
    /// # Panics
    ///
    /// Panics unless
    /// `1 ≤ skip_adapt_depth ≤ coalesce_depth ≤ shed_depth ≤ queue_capacity`,
    /// `shed_keep < shed_depth`, and `coalesce_max ≥ 1`.
    pub fn validate(&self) {
        assert!(self.skip_adapt_depth >= 1, "DegradePolicy: skip_adapt_depth must be ≥ 1");
        assert!(
            self.skip_adapt_depth <= self.coalesce_depth,
            "DegradePolicy: skip_adapt_depth must not exceed coalesce_depth"
        );
        assert!(
            self.coalesce_depth <= self.shed_depth,
            "DegradePolicy: coalesce_depth must not exceed shed_depth"
        );
        assert!(
            self.shed_depth <= self.queue_capacity,
            "DegradePolicy: shed_depth must not exceed queue_capacity"
        );
        assert!(self.shed_keep < self.shed_depth, "DegradePolicy: shed_keep must be < shed_depth");
        assert!(self.coalesce_max >= 1, "DegradePolicy: coalesce_max must be ≥ 1");
    }

    /// The ladder rung for a given deepest-queue depth — a pure,
    /// monotonically non-decreasing function of `max_depth`.
    pub fn level(&self, max_depth: usize) -> DegradeLevel {
        if max_depth >= self.shed_depth {
            DegradeLevel::Shed
        } else if max_depth >= self.coalesce_depth {
            DegradeLevel::Coalesce
        } else if max_depth >= self.skip_adapt_depth {
            DegradeLevel::SkipAdapt
        } else {
            DegradeLevel::Normal
        }
    }

    /// Frames one stream may drain this tick at `level` (1 below the
    /// coalesce rung, `coalesce_max` at or above it).
    pub fn serve_quota(&self, level: DegradeLevel) -> usize {
        if level >= DegradeLevel::Coalesce {
            self.coalesce_max
        } else {
            1
        }
    }

    /// Frames a shedding stream at `depth` must drop to reach `shed_keep` —
    /// the per-stream pure function behind the shed rung.
    pub fn shed_excess(&self, depth: usize) -> usize {
        depth.saturating_sub(self.shed_keep)
    }
}

/// Exact-accounting counters for one loaded run. Monotonic except
/// [`LoadCounters::queued`] (a point-in-time level) and
/// [`LoadCounters::max_queue_depth`] (a high-water mark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LoadCounters {
    /// Load-harness ticks completed.
    pub ticks: usize,
    /// Frames the arrival pattern generated (every one is accounted for:
    /// see [`LoadCounters::balanced`]).
    pub offered: usize,
    /// Frames individually scored with full adaptation (the undergraded
    /// path).
    pub served_full: usize,
    /// Frames individually scored while adaptation was suppressed (the
    /// skip-adapt rung; also the scored representative of each coalesced
    /// batch).
    pub served_degraded: usize,
    /// Frames drained into a rolling window inside a coalesced batch
    /// without an individual score.
    pub coalesced: usize,
    /// Frames dropped by the shed rung (lowest-priority streams, oldest
    /// first).
    pub shed: usize,
    /// Frames tail-dropped on arrival because a stream's bounded queue was
    /// full — the backstop behind the shed rung.
    pub overflow_dropped: usize,
    /// Frames still waiting in ingest queues after the last tick.
    pub queued: usize,
    /// Frames rejected at ingest admission because they failed validation
    /// (non-finite or out-of-range concept weights) — a terminal state, so
    /// corrupt sensor frames are accounted for, never silently dropped and
    /// never allowed to poison a session's adapted table.
    pub rejected: usize,
    /// Deepest any stream's queue ever got (post-arrival, pre-shed).
    pub max_queue_depth: usize,
    /// Ticks spent at each ladder rung, indexed by [`DegradeLevel::index`].
    pub ticks_at_level: [usize; 4],
}

impl LoadCounters {
    /// The exact-accounting identity: every offered frame is in exactly one
    /// terminal state (scored, coalesced, shed, overflow-dropped, or still
    /// queued). The soak asserts this after **every** tick — "no frame is
    /// silently dropped" is this identity, test- and CI-enforced.
    pub fn balanced(&self) -> bool {
        self.offered
            == self.served_full
                + self.served_degraded
                + self.coalesced
                + self.shed
                + self.overflow_dropped
                + self.queued
                + self.rejected
    }

    /// Frames that left the queue through serving (scored or coalesced).
    pub fn drained(&self) -> usize {
        self.served_full + self.served_degraded + self.coalesced
    }
}

/// Per-stream slice of the exact accounting (same terminal states as
/// [`LoadCounters`]) — what the loaded equivalence tests compare across
/// shard counts to prove *which* frames degrade is topology-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StreamLoadStats {
    /// Frames the arrival pattern generated for this stream.
    pub offered: usize,
    /// Individually scored with full adaptation.
    pub served_full: usize,
    /// Individually scored with adaptation suppressed.
    pub served_degraded: usize,
    /// Drained inside a coalesced batch without an individual score.
    pub coalesced: usize,
    /// Dropped by the shed rung.
    pub shed: usize,
    /// Tail-dropped on a full queue.
    pub overflow_dropped: usize,
    /// Rejected at ingest admission (failed [`akg_data::Frame::validate`]).
    pub rejected: usize,
}

/// One tick's degrade decision record — the compact log the determinism
/// property tests compare bit-for-bit across runs and shard counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickDecision {
    /// The tick this decision was taken at.
    pub tick: u64,
    /// The ladder rung chosen (from post-arrival queue depths).
    pub level: DegradeLevel,
    /// Deepest queue observed when choosing the rung (post-arrival,
    /// pre-shed).
    pub max_depth: u32,
    /// Frames individually scored this tick.
    pub served: u32,
    /// Frames coalesced this tick.
    pub coalesced: u32,
    /// Frames shed this tick (ladder rung only, not overflow).
    pub shed: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // 16 samples: p at rank k returns exactly k-1 for the linear range
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn quantization_error_is_bounded() {
        // Every value below 2^32 (the sized-bucket range; larger values
        // saturate) maps to a bucket whose upper bound overestimates it by
        // at most 1/16 of its magnitude.
        for shift in 4..32u64 {
            for salt in [0u64, 1, 7, 13] {
                let v = (1u64 << shift) + salt * ((1u64 << shift) / 16);
                let idx = LatencyHistogram::bucket_index(v);
                let upper = LatencyHistogram::bucket_upper(idx);
                assert!(upper >= v, "upper bound below value: {v} -> {upper}");
                assert!(
                    upper - v <= v / 16,
                    "quantization error too large: {v} -> {upper} (err {})",
                    upper - v
                );
            }
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        let mut prev = 0u64;
        for idx in 0..NUM_BUCKETS - 1 {
            let upper = LatencyHistogram::bucket_upper(idx);
            assert!(idx == 0 || upper > prev, "bucket {idx} upper bound not increasing");
            // The upper bound itself must land in its own bucket.
            assert_eq!(LatencyHistogram::bucket_index(upper), idx, "upper bound escapes bucket");
            // One past it must land in the next.
            assert_eq!(LatencyHistogram::bucket_index(upper + 1), idx + 1);
            prev = upper;
        }
    }

    #[test]
    fn percentiles_clamp_to_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.percentile(0.5), 1_000_003);
        assert_eq!(h.percentile(0.999), 1_000_003);
        assert_eq!(h.max(), 1_000_003);
        assert_eq!(LatencySummary::of(&h).p999, 1_000_003);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn ladder_level_is_monotone_in_depth() {
        let p = DegradePolicy::default();
        p.validate();
        let mut prev = DegradeLevel::Normal;
        for depth in 0..=p.queue_capacity + 4 {
            let level = p.level(depth);
            assert!(level >= prev, "ladder regressed at depth {depth}");
            prev = level;
        }
        assert_eq!(p.level(0), DegradeLevel::Normal);
        assert_eq!(p.level(p.skip_adapt_depth), DegradeLevel::SkipAdapt);
        assert_eq!(p.level(p.coalesce_depth), DegradeLevel::Coalesce);
        assert_eq!(p.level(p.shed_depth), DegradeLevel::Shed);
    }

    #[test]
    fn shed_excess_trims_to_keep() {
        let p = DegradePolicy::default();
        assert_eq!(p.shed_excess(p.shed_keep), 0);
        assert_eq!(p.shed_excess(p.shed_keep + 5), 5);
        assert_eq!(p.shed_excess(0), 0);
    }

    #[test]
    fn counters_balance_identity() {
        let c = LoadCounters {
            offered: 100,
            served_full: 40,
            served_degraded: 20,
            coalesced: 25,
            shed: 10,
            overflow_dropped: 2,
            queued: 2,
            rejected: 1,
            ..LoadCounters::default()
        };
        assert!(c.balanced());
        assert_eq!(c.drained(), 85);
        let broken = LoadCounters { queued: 3, ..c };
        assert!(!broken.balanced());
        let broken = LoadCounters { rejected: 0, ..c };
        assert!(!broken.balanced(), "rejected frames must be part of the identity");
    }

    #[test]
    #[should_panic(expected = "shed_keep must be < shed_depth")]
    fn policy_rejects_shed_keep_at_depth() {
        DegradePolicy { shed_keep: 16, shed_depth: 16, ..DegradePolicy::default() }.validate();
    }
}
