//! Deterministic fault injection for the serving runtime.
//!
//! Edge deployments crash, stall, and receive corrupt sensor frames as a
//! matter of course; a fault-tolerance layer is only trustworthy if those
//! failures can be *reproduced*. Every fault here is a **pure function of a
//! seed and its coordinates** — the same counter-mode splitmix64 discipline
//! as [`crate::load`]'s arrival draws: no advancing RNG state, no wall
//! clock, so a chaos run replays bit-identically and a fuzzed crash that
//! breaks the recovery contract becomes a permanent regression test by
//! pinning its seed.
//!
//! Two layers:
//!
//! - **Scripted faults** ([`ScriptedFault`]): "kill shard 1 at tick 7" —
//!   the precision tool the recovery-equivalence tests use to place a crash
//!   on an exact tick.
//! - **Chaos rates** ([`ChaosConfig`]): per-(site, tick) Bernoulli draws
//!   hashed from the seed — the background radiation the chaos soak runs
//!   under.
//!
//! ## Generations
//!
//! A crash fault that re-fired while the supervisor replayed the very tick
//! that triggered it would loop forever. Every worker carries a
//! **generation** (0 at first spawn, +1 per respawn), and crash/stall
//! queries take it as a coordinate: the *k*-th scripted crash on a shard
//! (in tick order) fires only in generation *k*, and chaos draws hash the
//! generation in, so a respawned worker re-rolls instead of re-dying
//! deterministically at the same tick. Progress is guaranteed for scripted
//! plans and overwhelmingly probable for sane chaos rates; the supervisor
//! additionally caps respawn attempts as a backstop.

use crate::load::{splitmix64, unit_uniform};
use akg_data::Frame;

/// Domain-separation constants so the crash/corrupt/stall draws at the same
/// `(seed, tick)` are independent.
const SITE_CRASH: u64 = 0x43_52_41_53_48; // "CRASH"
const SITE_CORRUPT: u64 = 0x43_4F_52_52; // "CORR"
const SITE_STALL: u64 = 0x53_54_41_4C_4C; // "STALL"

fn draw(seed: u64, site: u64, a: u64, b: u64, c: u64) -> f64 {
    unit_uniform(splitmix64(
        splitmix64(splitmix64(splitmix64(splitmix64(seed) ^ site) ^ a) ^ b) ^ c,
    ))
}

/// How an injected corruption mangles a frame — the three failure shapes a
/// real concept encoder produces when it goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A concept weight becomes NaN (uninitialized or 0/0 upstream).
    NanWeight,
    /// A concept weight becomes +∞ (overflowed accumulator).
    InfWeight,
    /// A concept weight becomes finite but absurdly large — past
    /// [`Frame::MAX_ACTIVATION`] (wrong byte order, unit mixup).
    OutOfRange,
}

/// Applies `kind` to the frame in place. The corrupted frame fails
/// [`Frame::validate`], which is the point: ingest-time validation, not
/// luck, is what keeps it out of the session's adapted table.
pub fn corrupt_frame(frame: &mut Frame, kind: CorruptionKind) {
    let weight = match kind {
        CorruptionKind::NanWeight => f32::NAN,
        CorruptionKind::InfWeight => f32::INFINITY,
        CorruptionKind::OutOfRange => Frame::MAX_ACTIVATION * 1.0e3,
    };
    match frame.concepts.first_mut() {
        Some((_, w)) => *w = weight,
        None => frame.concepts.push(("corrupt".to_string(), weight)),
    }
}

/// How an injected crash terminates the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// The worker returns from its loop (clean thread exit; channels drop).
    Exit,
    /// The worker panics mid-tick — the ruder death, exercising unwind
    /// paths and the drop-join discipline.
    Panic,
}

/// One scripted fault with exact coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScriptedFault {
    /// Kill the worker for `shard` when it receives its `tick`-th tick
    /// (1-based), by clean exit.
    WorkerCrash {
        /// Shard index.
        shard: usize,
        /// 1-based worker-local tick count at which to die.
        tick: usize,
    },
    /// Kill the worker for `shard` at `tick` by panic.
    WorkerPanic {
        /// Shard index.
        shard: usize,
        /// 1-based worker-local tick count at which to die.
        tick: usize,
    },
    /// Corrupt the frame `stream` offers at `tick` (0-based front-end tick).
    CorruptFrame {
        /// Stream id.
        stream: usize,
        /// 0-based front-end tick of the corrupted arrival.
        tick: u64,
        /// The corruption shape.
        kind: CorruptionKind,
    },
    /// Stall the worker for `shard` at `tick` for `millis` before it
    /// processes the tick — a slow worker, not a dead one. Stalls never
    /// trigger recovery (detection is disconnect-based, not timeout-based),
    /// and must not change a single output bit; they exist to prove that.
    StallWorker {
        /// Shard index.
        shard: usize,
        /// 1-based worker-local tick count to stall at.
        tick: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// Background fault rates for chaos runs. Each is the per-coordinate
/// probability of an independent Bernoulli draw.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosConfig {
    /// P(worker crash) per (shard, tick, generation).
    pub crash_rate: f64,
    /// P(frame corruption) per (stream, tick); the corruption kind cycles
    /// deterministically through all three shapes.
    pub corrupt_rate: f64,
    /// P(worker stall) per (shard, tick, generation).
    pub stall_rate: f64,
    /// Stall duration when a stall draw fires.
    pub stall_millis: u64,
}

/// A replayable fault schedule: scripted faults plus optional chaos rates,
/// all keyed off one seed. Cloneable and `Send` so every shard worker
/// carries the full plan and answers its own queries locally.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the chaos draws.
    pub seed: u64,
    /// Exact-coordinate faults.
    pub scripted: Vec<ScriptedFault>,
    /// Background fault rates, if chaos is enabled.
    pub chaos: Option<ChaosConfig>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever. This is what `ShardedRuntime::new`
    /// installs, so the fault layer is zero-cost unless asked for.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can never fire anything.
    pub fn is_none(&self) -> bool {
        self.scripted.is_empty() && self.chaos.is_none()
    }

    /// A plan with a single clean worker crash at exact coordinates.
    pub fn crash_at(shard: usize, tick: usize) -> Self {
        FaultPlan::default().with(ScriptedFault::WorkerCrash { shard, tick })
    }

    /// A plan with a single worker panic at exact coordinates.
    pub fn panic_at(shard: usize, tick: usize) -> Self {
        FaultPlan::default().with(ScriptedFault::WorkerPanic { shard, tick })
    }

    /// A plan with chaos rates under `seed`.
    pub fn chaos(seed: u64, chaos: ChaosConfig) -> Self {
        FaultPlan { seed, scripted: Vec::new(), chaos: Some(chaos) }
    }

    /// Adds a scripted fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: ScriptedFault) -> Self {
        self.scripted.push(fault);
        self
    }

    /// Should the worker for `shard`, in its `generation`-th life, die when
    /// processing its (1-based) `tick`-th tick — and if so, how?
    ///
    /// Scripted crashes on a shard fire one per generation in tick order
    /// (see the module docs on generations); chaos crashes hash the
    /// generation into the draw.
    pub fn worker_crash(&self, shard: usize, tick: usize, generation: usize) -> Option<CrashStyle> {
        // The generation-g worker dies at this shard's g-th smallest
        // scripted crash tick (stable on ties), regardless of script order.
        let mut crashes: Vec<(usize, CrashStyle)> = self
            .scripted
            .iter()
            .filter_map(|fault| match *fault {
                ScriptedFault::WorkerCrash { shard: s, tick: t } if s == shard => {
                    Some((t, CrashStyle::Exit))
                }
                ScriptedFault::WorkerPanic { shard: s, tick: t } if s == shard => {
                    Some((t, CrashStyle::Panic))
                }
                _ => None,
            })
            .collect();
        crashes.sort_by_key(|&(t, _)| t);
        if let Some(&(t, style)) = crashes.get(generation) {
            if t == tick {
                return Some(style);
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.crash_rate > 0.0
                && draw(self.seed, SITE_CRASH, shard as u64, tick as u64, generation as u64)
                    < chaos.crash_rate
            {
                return Some(CrashStyle::Exit);
            }
        }
        None
    }

    /// Should the frame `stream` offers at front-end `tick` be corrupted —
    /// and if so, how? Pure in `(seed, tick, stream)`, so single-node and
    /// sharded runs corrupt the *same* frames and the loaded-equivalence
    /// contract extends across corruption.
    pub fn corruption(&self, tick: u64, stream: u64) -> Option<CorruptionKind> {
        for fault in &self.scripted {
            if let ScriptedFault::CorruptFrame { stream: s, tick: t, kind } = *fault {
                if s as u64 == stream && t == tick {
                    return Some(kind);
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.corrupt_rate > 0.0 {
                let v = splitmix64(
                    splitmix64(splitmix64(splitmix64(self.seed) ^ SITE_CORRUPT) ^ tick) ^ stream,
                );
                if unit_uniform(v) < chaos.corrupt_rate {
                    // cycle the kind off independent bits of the same draw
                    return Some(match v >> 60 & 0b11 {
                        0 => CorruptionKind::NanWeight,
                        1 => CorruptionKind::InfWeight,
                        _ => CorruptionKind::OutOfRange,
                    });
                }
            }
        }
        None
    }

    /// How long (ms) the worker for `shard` should stall before processing
    /// its `tick`-th tick in its `generation`-th life, if at all.
    pub fn stall_millis(&self, shard: usize, tick: usize, generation: usize) -> Option<u64> {
        for fault in &self.scripted {
            if let ScriptedFault::StallWorker { shard: s, tick: t, millis } = *fault {
                if s == shard && t == tick {
                    return Some(millis);
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.stall_rate > 0.0
                && draw(self.seed, SITE_STALL, shard as u64, tick as u64, generation as u64)
                    < chaos.stall_rate
            {
                return Some(chaos.stall_millis);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::chaos(
            0xFA_017,
            ChaosConfig { crash_rate: 0.05, corrupt_rate: 0.1, stall_rate: 0.03, stall_millis: 2 },
        );
        for tick in 0..200usize {
            for shard in 0..4usize {
                assert_eq!(
                    plan.worker_crash(shard, tick, 0),
                    plan.worker_crash(shard, tick, 0),
                    "crash draw not replayable"
                );
                assert_eq!(plan.stall_millis(shard, tick, 1), plan.stall_millis(shard, tick, 1));
            }
            assert_eq!(plan.corruption(tick as u64, 3), plan.corruption(tick as u64, 3));
        }
        // a different seed yields a different schedule somewhere
        let other = FaultPlan::chaos(0xFA_018, plan.chaos.unwrap());
        let differs = (0..2000u64).any(|t| plan.corruption(t, 0) != other.corruption(t, 0));
        assert!(differs, "seed does not influence the chaos schedule");
    }

    #[test]
    fn chaos_rates_land_near_their_probability() {
        let plan = FaultPlan::chaos(
            99,
            ChaosConfig { crash_rate: 0.1, corrupt_rate: 0.2, ..ChaosConfig::default() },
        );
        let crashes = (1..=10_000usize).filter(|&t| plan.worker_crash(0, t, 0).is_some()).count();
        let corrupt = (0..10_000u64).filter(|&t| plan.corruption(t, 0).is_some()).count();
        assert!((800..1200).contains(&crashes), "crash draws far off 10%: {crashes}");
        assert!((1700..2300).contains(&corrupt), "corrupt draws far off 20%: {corrupt}");
    }

    #[test]
    fn scripted_crashes_fire_one_per_generation_in_tick_order() {
        let plan = FaultPlan::default()
            .with(ScriptedFault::WorkerCrash { shard: 1, tick: 10 })
            .with(ScriptedFault::WorkerPanic { shard: 1, tick: 30 })
            .with(ScriptedFault::WorkerCrash { shard: 2, tick: 5 });
        // generation 0 of shard 1 dies at tick 10, not 30
        assert_eq!(plan.worker_crash(1, 10, 0), Some(CrashStyle::Exit));
        assert_eq!(plan.worker_crash(1, 30, 0), None);
        // generation 1 replays past tick 10 unharmed, dies at 30
        assert_eq!(plan.worker_crash(1, 10, 1), None);
        assert_eq!(plan.worker_crash(1, 30, 1), Some(CrashStyle::Panic));
        // generation 2 survives everything
        assert!((1..=40).all(|t| plan.worker_crash(1, t, 2).is_none()));
        // shard 2's schedule is independent
        assert_eq!(plan.worker_crash(2, 5, 0), Some(CrashStyle::Exit));
        assert_eq!(plan.worker_crash(2, 5, 1), None);
        // untouched shards never die
        assert!((1..=40).all(|t| plan.worker_crash(0, t, 0).is_none()));
    }

    #[test]
    fn corrupt_frame_fails_validation_in_every_shape() {
        for kind in
            [CorruptionKind::NanWeight, CorruptionKind::InfWeight, CorruptionKind::OutOfRange]
        {
            let mut frame = Frame { concepts: vec![("person".into(), 0.7)], label: None };
            assert!(frame.validate().is_ok());
            corrupt_frame(&mut frame, kind);
            assert!(frame.validate().is_err(), "{kind:?} slipped past validation");
        }
        // even an empty frame becomes rejectable
        let mut empty = Frame { concepts: vec![], label: None };
        corrupt_frame(&mut empty, CorruptionKind::NanWeight);
        assert!(empty.validate().is_err());
    }

    #[test]
    fn empty_plan_is_silent() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for t in 0..100usize {
            assert_eq!(plan.worker_crash(0, t, 0), None);
            assert_eq!(plan.corruption(t as u64, 0), None);
            assert_eq!(plan.stall_millis(0, t, 0), None);
        }
    }
}
