//! Sharded multi-core serving: N worker threads, each owning an isolated
//! shard of the deployment's streams, wired to an ingest front-end by
//! bounded SPSC queues.
//!
//! ## Topology
//!
//! ```text
//!             ┌────────────── ShardedRuntime (caller thread) ──────────────┐
//!             │  sources (FrameSource per stream)       counters, drain    │
//!             └──┬─────────────────┬─────────────────────▲────────▲────────┘
//!    tick frames │                 │                     │ scores │
//!     (bounded   ▼                 ▼                     │ (bounded SPSC
//!      SPSC)  ┌──────┐          ┌──────┐                 │  per shard)
//!             │shard0│          │shard1│  … one OS thread per shard,
//!             │worker│          │worker│    each owning: its own Engine
//!             └──────┘          └──────┘    replica, its streams' Sessions
//!                                           + adapters, one Workspace
//! ```
//!
//! The front-end owns every [`FrameSource`] and pulls one frame per stream
//! per tick; frames cross to the owning shard over a bounded SPSC queue (one
//! message per shard per tick, so queue traffic is O(shards), not
//! O(frames)); each worker runs the tick exactly as the single-threaded
//! [`MultiStreamRuntime`] would over its subset of streams — a shard *is* a
//! `MultiStreamRuntime` fed by a queue — and sends the scores back over its
//! result queue, where the drain path reassembles the per-stream score
//! vector and aggregates [`ServeCounters`].
//!
//! ## Why each worker builds its own engine
//!
//! Tensors are `Rc`-based (not `Send`), so an [`Engine`] cannot be shared
//! across threads or even moved to one. Instead every worker *builds* its
//! own engine replica on its own thread from the same [`EngineSpec`];
//! [`Engine::build`] is fully deterministic given a config (every RNG is
//! seeded), so all replicas are bit-identical — unit-tested here. Sessions
//! and adapters are created worker-side too, seeded by the same
//! `(frame_seed, AdaptConfig)` the single-threaded runtime would use.
//!
//! ## The shard-equivalence contract
//!
//! Serving at **any** shard count is bit-identical per stream — scores,
//! adapted token tables, replacement counts — to single-shard (and to the
//! pre-sharding [`MultiStreamRuntime`], and to the legacy single-stream
//! path). The argument is structural:
//!
//! 1. shard engines are bit-identical replicas (deterministic build);
//! 2. streams are share-nothing: a session's adaptation touches only its
//!    own table fork and KG copies, so co-residence on a worker is
//!    unobservable;
//! 3. batch composition never changes results (`score_windows_batch` is
//!    bit-identical per item — the PR 3 contract), so how a shard's streams
//!    chunk into dispatches is unobservable;
//! 4. per-stream frame order is preserved end-to-end: assignment is stable
//!    (stream id → shard, fixed at [`ShardedRuntime::add_stream`]), and the
//!    SPSC queues are FIFO.
//!
//! `tests/equivalence.rs` enforces the contract at shard counts {1, 2, 4}
//! under both Scalar and SIMD backends across a mid-run trend shift;
//! `tests/proptest_shard.rs` fuzzes stream/shard counts and arrival
//! interleavings.
//!
//! ## Oversubscription (the shards × threads rule)
//!
//! Every kernel call resolves the process-wide thread-pool setting, so `S`
//! shard workers would otherwise *each* spawn the full-width inner row pool:
//! `S × threads` runnable threads on `threads` cores. Each worker therefore
//! caps its own kernels via [`akg_tensor::par::set_thread_cap`] at
//! `max(1, effective_threads() / shards)` (overridable through
//! [`ShardedConfig::inner_threads`]), keeping `shards × inner-threads` at or
//! below the machine width. The cap is thread-local: the training plane and
//! other threads are unaffected.
//!
//! ## Worker supervision and recovery
//!
//! A worker thread dying (panic or clean exit — e.g. an injected
//! [`crate::fault`] crash) used to panic the whole process. Now the
//! front-end is a supervisor: death surfaces as a typed SPSC disconnect
//! ([`spsc::RecvError`] / [`spsc::SendError`]), and the supervisor
//!
//! 1. joins the dead thread and respawns the worker (generation + 1) — the
//!    replica engine rebuilds deterministically from the same [`EngineSpec`];
//! 2. restores the newest [`ShardCheckpoint`](crate::checkpoint::ShardCheckpoint)
//!    the dead worker piggybacked on a past tick reply (every
//!    [`ShardedConfig::checkpoint_interval`] ticks), or re-registers the
//!    streams from scratch if none landed yet;
//! 3. replays the buffered tick inputs sent since that checkpoint and
//!    re-harvests their replies (replies the caller already consumed are
//!    absorbed and discarded; the rest are held for the normal drain).
//!
//! Because every stage of a tick is deterministic, the recovered worker is
//! **bit-identical** to one that never died — scores, adapted tables,
//! replacement counts, even the serve counters. `tests/recovery.rs` and
//! `tests/proptest_fault.rs` enforce this recovery-equivalence contract
//! (crash tick fuzzed, Scalar and SIMD, plus a 520-tick chaos soak);
//! [`ShardedRuntime::recovery_stats`] reports what recovery did. Stalled
//! workers are *not* faults: detection is disconnect-based, never
//! timeout-based, so a slow worker just applies backpressure and changes no
//! output bit.

use crate::checkpoint::{CheckpointRing, RecoveryStats, ShardCheckpoint};
use crate::fault::{corrupt_frame, CrashStyle, FaultPlan};
use crate::spsc;
use crate::{FrameSource, MultiStreamRuntime, RuntimeConfig, ServeCounters, StreamId, StreamPlan};
use akg_core::adapt::AdaptConfig;
use akg_core::engine::Engine;
use akg_core::pipeline::SystemConfig;
use akg_data::Frame;
use akg_kg::AnomalyClass;
use akg_tensor::WorkspaceStats;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::thread::JoinHandle;

/// Hard cap on consecutive respawn attempts for one recovery — a backstop
/// against a pathological fault plan that kills every generation (the
/// generation-aware scheduling in [`crate::fault`] makes this unreachable
/// for scripted plans and vanishingly unlikely for sane chaos rates).
const MAX_RECOVERY_ATTEMPTS: usize = 64;

/// Everything a shard worker needs to rebuild the deployment's engine on its
/// own thread: the mission list and the full system configuration.
/// [`Engine::build`] is deterministic, so every worker's replica is
/// bit-identical to every other's (and to one built by the caller).
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// The deployed missions (one KG each).
    pub missions: Vec<AnomalyClass>,
    /// The system configuration (model dims, seeds, backend, parallelism).
    pub config: SystemConfig,
}

impl EngineSpec {
    /// Bundles missions and configuration into a spec.
    pub fn new(missions: &[AnomalyClass], config: SystemConfig) -> Self {
        EngineSpec { missions: missions.to_vec(), config }
    }

    /// Builds one engine replica from this spec (what every shard worker
    /// does at startup).
    pub fn build(&self) -> Engine {
        Engine::build(&self.missions, &self.config)
    }
}

/// Sharded-runtime knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Worker threads to partition the streams across (≥ 1).
    pub shards: usize,
    /// Largest cross-stream batch one dispatch may carry *within* a shard
    /// (the [`RuntimeConfig::max_batch`] of each worker's inner runtime).
    pub max_batch: usize,
    /// Bounded depth of each shard's frame queue, in ticks. [`tick`]
    /// (`ShardedRuntime::tick`) always drains synchronously;
    /// [`ShardedRuntime::run`] pipelines up to this many ticks ahead of the
    /// slowest shard before blocking (backpressure instead of unbounded
    /// backlog).
    pub queue_depth: usize,
    /// Per-worker cap on the inner kernel thread pool. `None` applies the
    /// oversubscription rule `max(1, effective_threads() / shards)` (see
    /// the module docs).
    pub inner_threads: Option<usize>,
    /// Workers piggyback a full [`ShardCheckpoint`] on every
    /// `checkpoint_interval`-th tick reply (≥ 1). This bounds the recovery
    /// replay window — and the front-end's replay buffer — to
    /// `checkpoint_interval + queue_depth` ticks once the first checkpoint
    /// lands (before that, recovery replays from genesis). Smaller values
    /// mean faster recovery but more capture overhead per tick.
    pub checkpoint_interval: usize,
    /// How many recent checkpoints the front-end retains per shard (≥ 1).
    /// Recovery always restores the newest; extras only bound memory.
    pub checkpoint_ring: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: akg_tensor::par::effective_threads().max(1),
            max_batch: 16,
            queue_depth: 2,
            inner_threads: None,
            checkpoint_interval: 16,
            checkpoint_ring: 2,
        }
    }
}

impl ShardedConfig {
    /// A config with exactly `shards` workers and the other knobs at their
    /// defaults.
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig { shards, ..ShardedConfig::default() }
    }
}

/// Commands the front-end sends a shard worker (FIFO per shard).
enum ToShard {
    /// Register a stream (worker creates the session + adapter).
    AddStream {
        frame_seed: u64,
        adapt: AdaptConfig,
    },
    /// One tick's frames and per-stream plans, in local registration order:
    /// `frames` is the concatenation, stream by stream, of exactly
    /// `plans[local].ingest` frames each. A default plan for every stream
    /// (one frame in, score, adapt) is the classic unloaded tick; the
    /// loaded front-end ships non-default plans. The `bool` is the frame
    /// label riding along (never read by serving, preserved for API
    /// fidelity with [`FrameSource`]).
    Tick {
        frames: Vec<(Frame, bool)>,
        plans: Vec<StreamPlan>,
    },
    /// Rebuild every stream of a freshly respawned worker from a checkpoint
    /// (sent before any `Tick`; the replayed ticks follow).
    Restore(Box<ShardCheckpoint>),
    Query,
}

/// Worker → drain messages.
enum FromShard {
    /// One processed tick: per-local-stream scores (`None` = the stream's
    /// plan did not score this round) plus the worker's cumulative
    /// counters, and — every `checkpoint_interval` ticks — a piggybacked
    /// recovery checkpoint (no drain barrier, no extra round-trip).
    Tick {
        scores: Vec<Option<f32>>,
        counters: ServeCounters,
        checkpoint: Option<Box<ShardCheckpoint>>,
    },
    Snapshot(ShardSnapshot),
}

/// A point-in-time view of one shard's state, taken on the worker thread.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// The shard's serving-workspace counters (scoring scratch high-water).
    pub workspace: WorkspaceStats,
    /// Per-stream state, in the shard's local registration order.
    pub streams: Vec<StreamSnapshot>,
}

/// A point-in-time view of one stream's adaptive state.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// The stream's adapted token table (full parameter data).
    pub table: Vec<f32>,
    /// Structural node replacements performed so far.
    pub replacements: usize,
    /// Token-update adaptation events so far.
    pub token_updates: usize,
    /// The session's inference-workspace counters.
    pub workspace: WorkspaceStats,
}

/// The shared handle behind one stream's [`TickFeed`]: the worker deposits
/// the tick's frame, the feed pops it from inside the inner runtime.
type FeedQueue = Rc<RefCell<VecDeque<(Frame, bool)>>>;

/// A per-tick frame feed: the worker-side [`FrameSource`] backed by the
/// frames the front-end shipped over the queue. `tick` deposits exactly one
/// frame per stream before invoking the inner runtime, so the pop never
/// underflows.
struct TickFeed(FeedQueue);

impl FrameSource for TickFeed {
    fn next_frame(&mut self) -> (Frame, bool) {
        self.0.borrow_mut().pop_front().expect("TickFeed: no frame deposited for this tick")
    }
}

/// One tick's inputs for one shard, retained by the supervisor until a
/// checkpoint covering it arrives — the recovery replay unit.
struct TickRecord {
    /// 1-based per-shard tick sequence number (equals the worker's own tick
    /// counter, since every shard sees every round).
    seq: usize,
    frames: Vec<(Frame, bool)>,
    plans: Vec<StreamPlan>,
}

struct ShardHandle {
    /// `Some` until drop; dropping the sender is the shutdown signal.
    commands: Option<spsc::Sender<ToShard>>,
    results: spsc::Receiver<FromShard>,
    thread: Option<JoinHandle<()>>,
    /// Global [`StreamId`]s in this shard's local registration order.
    locals: Vec<StreamId>,
    /// Cumulative counters as of the last drained tick.
    counters: ServeCounters,
    /// `(frame_seed, adapt)` per local stream — enough to re-register every
    /// stream from genesis if a worker dies before its first checkpoint.
    stream_meta: Vec<(u64, AdaptConfig)>,
    /// The newest piggybacked checkpoints.
    ring: CheckpointRing,
    /// Tick inputs sent since the newest checkpoint (plus any in flight) —
    /// what recovery replays. Pruned whenever a checkpoint lands.
    replay: VecDeque<TickRecord>,
    /// Replies regenerated during recovery that the caller has not drained
    /// yet; `drain_tick` consumes these before touching the queue.
    pending: VecDeque<FromShard>,
    /// Ticks sent to this shard so far (1-based sequence of the last send).
    sent: usize,
    /// Ticks whose replies the caller has consumed.
    acked: usize,
    /// Worker generation: 0 at startup, +1 per respawn. Fault plans are
    /// generation-aware so a replayed tick does not re-kill every respawn.
    generation: usize,
}

impl ShardHandle {
    /// Absorbs a checkpoint that arrived with a tick reply: retains it for
    /// recovery and drops replay records it supersedes.
    fn absorb_checkpoint(&mut self, cp: ShardCheckpoint) {
        while self.replay.front().is_some_and(|rec| rec.seq <= cp.tick) {
            self.replay.pop_front();
        }
        self.ring.push(cp);
    }
}

/// The sharded multi-core serving runtime: stream sources and shard workers
/// wired by bounded SPSC queues (see the module docs for the topology and
/// the shard-equivalence contract).
///
/// # Examples
///
/// ```
/// use akg_core::adapt::AdaptConfig;
/// use akg_core::pipeline::SystemConfig;
/// use akg_kg::AnomalyClass;
/// use akg_runtime::{EngineSpec, FnSource, ShardedConfig, ShardedRuntime};
///
/// let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
/// let mut rt = ShardedRuntime::new(spec, ShardedConfig::with_shards(2));
/// let frame = akg_data::Frame { concepts: vec![("walking".into(), 1.0)], label: None };
/// for i in 0..4 {
///     let f = frame.clone();
///     rt.add_stream(FnSource(move || (f.clone(), false)), i, AdaptConfig::default());
/// }
/// let scores = rt.tick();
/// assert_eq!(scores.len(), 4);
/// assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
/// ```
pub struct ShardedRuntime<S: FrameSource> {
    sources: Vec<S>,
    /// `assignment[stream] = (shard, local index within the shard)` — fixed
    /// at registration, never rebalanced (stability is part of the
    /// contract: a stream's frames always flow through one FIFO).
    assignment: Vec<(usize, usize)>,
    shards: Vec<ShardHandle>,
    ticks: usize,
    /// Ticks pushed but not yet drained ([`ShardedRuntime::run`] pipelining).
    in_flight: usize,
    config: ShardedConfig,
    /// Kept past construction so the supervisor can rebuild dead workers'
    /// engine replicas.
    spec: EngineSpec,
    /// The resolved per-worker kernel-thread cap (respawns reuse it).
    inner_threads: usize,
    /// The deterministic fault plan (empty in production).
    faults: FaultPlan,
    recovery: RecoveryStats,
    /// Frames rejected at the ingest boundary, per stream (front-end side;
    /// invalid frames never cross to a worker).
    rejected: Vec<usize>,
}

/// A sharded runtime over owned dataset-backed streams — the common
/// deployment shape (mirrors [`crate::OwnedStreamRuntime`]).
pub type OwnedShardedRuntime = ShardedRuntime<akg_data::OwnedAdaptationStream>;

impl<S: FrameSource> ShardedRuntime<S> {
    /// Spawns `config.shards` workers, each building its own engine replica
    /// from `spec` (see the module docs for why engines are replicated
    /// rather than shared).
    ///
    /// The process-global kernel policies (thread pool, compute backend) are
    /// applied and hardware-resolved **once, here, on the calling thread**
    /// before any worker starts: workers re-apply the same values when they
    /// build (idempotent atomic stores), so no worker ever observes a
    /// half-resolved backend, and the one-time SIMD/`available_parallelism`
    /// detections are already cached when they first score.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`, `config.max_batch == 0`,
    /// `config.queue_depth == 0`, `config.checkpoint_interval == 0`, or
    /// `config.checkpoint_ring == 0`.
    pub fn new(spec: EngineSpec, config: ShardedConfig) -> Self {
        Self::with_faults(spec, config, FaultPlan::none())
    }

    /// Like [`ShardedRuntime::new`], but with a deterministic [`FaultPlan`]
    /// injected: scripted or seeded worker crashes, stalls, and frame
    /// corruptions fire exactly where the plan says, and the supervisor
    /// recovers through them (see the module docs). Production callers use
    /// [`ShardedRuntime::new`], which passes [`FaultPlan::none`].
    ///
    /// # Examples
    ///
    /// ```
    /// use akg_core::adapt::AdaptConfig;
    /// use akg_core::pipeline::SystemConfig;
    /// use akg_kg::AnomalyClass;
    /// use akg_runtime::{EngineSpec, FaultPlan, FnSource, ShardedConfig, ShardedRuntime};
    ///
    /// let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
    /// // Worker 0 is killed right before it would process its 2nd tick…
    /// let faults = FaultPlan::crash_at(0, 2);
    /// let mut rt = ShardedRuntime::with_faults(spec, ShardedConfig::with_shards(2), faults);
    /// let frame = akg_data::Frame { concepts: vec![("walking".into(), 1.0)], label: None };
    /// for i in 0..2 {
    ///     let f = frame.clone();
    ///     rt.add_stream(FnSource(move || (f.clone(), false)), i, AdaptConfig::default());
    /// }
    /// // …yet four ticks of scores flow, bit-identical to a fault-free run.
    /// for _ in 0..4 {
    ///     assert_eq!(rt.tick().len(), 2);
    /// }
    /// assert_eq!(rt.recovery_stats().recoveries, 1);
    /// ```
    pub fn with_faults(spec: EngineSpec, config: ShardedConfig, faults: FaultPlan) -> Self {
        assert!(config.shards > 0, "ShardedConfig::shards must be positive");
        assert!(config.max_batch > 0, "ShardedConfig::max_batch must be positive");
        assert!(config.queue_depth > 0, "ShardedConfig::queue_depth must be positive");
        assert!(
            config.checkpoint_interval > 0,
            "ShardedConfig::checkpoint_interval must be positive"
        );
        assert!(config.checkpoint_ring > 0, "ShardedConfig::checkpoint_ring must be positive");
        // Resolve the global knobs once, before any worker can race the
        // first-use detection paths.
        akg_tensor::par::set_parallelism(spec.config.parallelism);
        akg_tensor::backend::set_backend(spec.config.backend);
        let _ = akg_tensor::backend::effective_backend();
        let width = akg_tensor::par::effective_threads();
        // The oversubscription rule: shards × inner-threads ≤ machine width.
        let inner = config.inner_threads.unwrap_or_else(|| (width / config.shards).max(1));
        let shards = (0..config.shards)
            .map(|shard_idx| {
                let (cmd_tx, res_rx, thread) =
                    spawn_shard_worker(&spec, config, inner, shard_idx, 0, &faults);
                ShardHandle {
                    commands: Some(cmd_tx),
                    results: res_rx,
                    thread: Some(thread),
                    locals: Vec::new(),
                    counters: ServeCounters::default(),
                    stream_meta: Vec::new(),
                    ring: CheckpointRing::new(config.checkpoint_ring),
                    replay: VecDeque::new(),
                    pending: VecDeque::new(),
                    sent: 0,
                    acked: 0,
                    generation: 0,
                }
            })
            .collect();
        ShardedRuntime {
            sources: Vec::new(),
            assignment: Vec::new(),
            shards,
            ticks: 0,
            in_flight: 0,
            config,
            spec,
            inner_threads: inner,
            faults,
            recovery: RecoveryStats::default(),
            rejected: Vec::new(),
        }
    }

    /// Registers a stream: assigns it to shard `stream_id % shards` (stable
    /// for the runtime's lifetime) and has that worker fork a session seeded
    /// with `frame_seed` and attach its continuous-adaptation loop — exactly
    /// as [`MultiStreamRuntime::add_stream`] would. Returns the stream's id.
    ///
    /// # Panics
    ///
    /// Panics if any tick has already been pushed: the stream set must be
    /// fixed before serving starts, because recovery replays recorded tick
    /// inputs whose per-stream plan alignment assumes a stable set.
    pub fn add_stream(&mut self, source: S, frame_seed: u64, adapt: AdaptConfig) -> StreamId {
        assert_eq!(
            self.ticks + self.in_flight,
            0,
            "add_stream: register every stream before the first tick"
        );
        let id = self.sources.len();
        let shard = id % self.shards.len();
        let local = self.shards[shard].locals.len();
        self.sources.push(source);
        self.assignment.push((shard, local));
        self.rejected.push(0);
        self.shards[shard].locals.push(id);
        self.shards[shard].stream_meta.push((frame_seed, adapt));
        let sent = self.shards[shard]
            .commands
            .as_ref()
            .expect("command sender live until drop")
            .send(ToShard::AddStream { frame_seed, adapt })
            .is_ok();
        if !sent {
            // A worker dead this early respawns via the genesis path, which
            // re-registers every stream recorded in `stream_meta`.
            self.recover_shard(shard);
        }
        id
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a stream is assigned to (stable: `stream_id % shards`).
    pub fn shard_of(&self, id: StreamId) -> usize {
        self.assignment[id].0
    }

    /// Mutable access to a stream's frame source (e.g. to trigger a trend
    /// shift mid-run). Sources live on the caller thread, never cross to
    /// workers.
    pub fn source_mut(&mut self, id: StreamId) -> &mut S {
        &mut self.sources[id]
    }

    /// Aggregate throughput counters across all shards: `frames`,
    /// `dispatches`, `token_updates` and `node_replacements` are summed,
    /// `max_batch_seen` is the max, and `ticks` counts full cross-shard
    /// scheduler rounds. Note `dispatches` depends on the shard layout
    /// (each shard chunks its own streams by `max_batch`), so it is *not*
    /// invariant across shard counts the way the semantic counters are.
    pub fn counters(&self) -> ServeCounters {
        let mut agg = ServeCounters { ticks: self.ticks, ..ServeCounters::default() };
        for shard in &self.shards {
            agg.frames += shard.counters.frames;
            agg.dispatches += shard.counters.dispatches;
            agg.max_batch_seen = agg.max_batch_seen.max(shard.counters.max_batch_seen);
            agg.token_updates += shard.counters.token_updates;
            agg.node_replacements += shard.counters.node_replacements;
            agg.rejected += shard.counters.rejected;
        }
        // Front-end rejections (invalid frames never shipped to a worker).
        agg.rejected += self.rejected.iter().sum::<usize>();
        agg
    }

    /// What recovery has done so far: respawn count, replay window sizes,
    /// checkpoint-vs-genesis split, and the wall time spent recovering. The
    /// deterministic fields are bit-identical across backends for a given
    /// fault plan.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Frames rejected at the ingest boundary for one stream (malformed
    /// concepts, non-finite or out-of-range weights — see
    /// [`akg_data::Frame::validate`]). Rejected frames are counted, never
    /// silently dropped: the exact-accounting identity in the load harness
    /// includes this term.
    pub fn rejected_frames(&self, id: StreamId) -> usize {
        self.rejected[id]
    }

    /// The newest retained checkpoint per shard (`None` until a shard's
    /// first `checkpoint_interval`-th tick reply lands). Exposed so the
    /// bench harness can measure checkpoint size without re-capturing.
    pub fn latest_checkpoints(&self) -> Vec<Option<&ShardCheckpoint>> {
        self.shards.iter().map(|shard| shard.ring.latest()).collect()
    }

    /// One scheduler round: pulls one frame per stream from its source,
    /// ships each shard its frames (one message per shard), waits for every
    /// shard's scores, and returns them indexed by [`StreamId`] — the
    /// sharded analogue of [`MultiStreamRuntime::tick`], bit-identical to it
    /// per stream at any shard count.
    ///
    /// # Panics
    ///
    /// Panics if no streams are registered.
    pub fn tick(&mut self) -> Vec<f32> {
        self.push_tick();
        self.drain_tick()
            .into_iter()
            .map(|s| s.expect("default plan scores every stream"))
            .collect()
    }

    /// Runs `ticks` scheduler rounds, returning per-stream score sequences
    /// (`result[stream][tick]`). Unlike [`ShardedRuntime::tick`], rounds are
    /// **pipelined**: the front-end keeps up to
    /// [`ShardedConfig::queue_depth`] ticks in flight, pulling source frames
    /// that far ahead of the slowest shard, so workers never idle between
    /// rounds. Results are identical to calling `tick` in a loop (frame
    /// content never depends on scores).
    pub fn run(&mut self, ticks: usize) -> Vec<Vec<f32>> {
        let mut out = vec![Vec::with_capacity(ticks); self.sources.len()];
        let depth = self.config.queue_depth;
        let mut pushed = 0usize;
        let mut drained = 0usize;
        while drained < ticks {
            while pushed < ticks && pushed - drained < depth {
                self.push_tick();
                pushed += 1;
            }
            for (stream, score) in self.drain_tick().into_iter().enumerate() {
                out[stream].push(score.expect("default plan scores every stream"));
            }
            drained += 1;
        }
        out
    }

    /// One planned scheduler round driven by an external ingest layer (the
    /// latency-SLO load harness, [`crate::load::LoadedRuntime`]):
    /// `frames[stream]` carries the frames the harness admitted for that
    /// stream this tick — exactly `plans[stream].ingest` of them — and
    /// `plans[stream]` its degrade directives. The runtime's own
    /// [`FrameSource`]s are **not** pulled. Returns per-stream scores
    /// indexed by [`StreamId`] (`None` = not scored this round).
    ///
    /// Because every plan is computed by the front-end from global queue
    /// state and workers only execute, the shard-equivalence contract
    /// extends to loaded serving: any shard count yields bit-identical
    /// scores *and* bit-identical degrade decisions to a single-node run.
    ///
    /// # Panics
    ///
    /// Panics if no streams are registered, or if `frames`/`plans` lengths
    /// disagree with the stream count or with each plan's `ingest`.
    pub fn tick_planned(
        &mut self,
        mut frames: Vec<Vec<(Frame, bool)>>,
        plans: &[StreamPlan],
    ) -> Vec<Option<f32>> {
        let n = self.assignment.len();
        assert!(n > 0, "tick: no streams registered");
        assert_eq!(plans.len(), n, "tick_planned: one plan per stream");
        assert_eq!(frames.len(), n, "tick_planned: one frame batch per stream");
        let mut per_shard_frames: Vec<Vec<(Frame, bool)>> =
            self.shards.iter().map(|_| Vec::new()).collect();
        let mut per_shard_plans: Vec<Vec<StreamPlan>> =
            self.shards.iter().map(|shard| Vec::with_capacity(shard.locals.len())).collect();
        // Iterate streams in id order; within a shard this is exactly the
        // local registration order the worker's slots use.
        for (id, batch) in frames.iter_mut().enumerate() {
            assert_eq!(
                batch.len(),
                plans[id].ingest,
                "tick_planned: stream {id} frames do not match its plan"
            );
            let shard = self.assignment[id].0;
            per_shard_frames[shard].append(batch);
            per_shard_plans[shard].push(plans[id]);
        }
        for (idx, (frames, plans)) in per_shard_frames.into_iter().zip(per_shard_plans).enumerate()
        {
            self.send_tick(idx, frames, plans);
        }
        self.in_flight += 1;
        self.drain_tick()
    }

    /// Pulls one frame per stream, validates it at the ingest boundary
    /// (applying any planned corruption first), and ships each shard its
    /// tick message. Valid frames get the default plan (one frame in,
    /// score, adapt); a rejected frame is counted, never shipped, and its
    /// stream is planned `ingest: 0` — the worker still scores the existing
    /// window and runs adaptation bookkeeping, exactly as the single-node
    /// runtime treats a rejected frame.
    fn push_tick(&mut self) {
        assert!(!self.sources.is_empty(), "tick: no streams registered");
        // 0-based index of the tick being pushed (drained + in flight).
        let tick_coord = (self.ticks + self.in_flight) as u64;
        let mut per_shard_frames: Vec<Vec<(Frame, bool)>> =
            self.shards.iter().map(|shard| Vec::with_capacity(shard.locals.len())).collect();
        let mut per_shard_plans: Vec<Vec<StreamPlan>> =
            self.shards.iter().map(|shard| Vec::with_capacity(shard.locals.len())).collect();
        // Iterate streams in id order; within a shard this is exactly the
        // local registration order the worker's slots use.
        for (id, source) in self.sources.iter_mut().enumerate() {
            let (mut frame, label) = source.next_frame();
            if let Some(kind) = self.faults.corruption(tick_coord, id as u64) {
                corrupt_frame(&mut frame, kind);
            }
            let shard = self.assignment[id].0;
            if frame.validate().is_ok() {
                per_shard_frames[shard].push((frame, label));
                per_shard_plans[shard].push(StreamPlan::default());
            } else {
                self.rejected[id] += 1;
                per_shard_plans[shard].push(StreamPlan { ingest: 0, score: true, adapt: true });
            }
        }
        for (idx, (frames, plans)) in per_shard_frames.into_iter().zip(per_shard_plans).enumerate()
        {
            self.send_tick(idx, frames, plans);
        }
        self.in_flight += 1;
    }

    /// Records one shard's tick inputs in its replay buffer, then ships
    /// them; a send that fails (worker died) triggers recovery, which
    /// replays the buffer — including the record just pushed.
    fn send_tick(&mut self, idx: usize, frames: Vec<(Frame, bool)>, plans: Vec<StreamPlan>) {
        let delivered = {
            let shard = &mut self.shards[idx];
            shard.sent += 1;
            shard.replay.push_back(TickRecord { seq: shard.sent, frames, plans });
            let rec = shard.replay.back().expect("record just pushed");
            let msg = ToShard::Tick { frames: rec.frames.clone(), plans: rec.plans.clone() };
            shard.commands.as_ref().expect("command sender live until drop").send(msg).is_ok()
        };
        if !delivered {
            self.recover_shard(idx);
        }
    }

    /// Receives one processed tick from every shard and reassembles the
    /// per-stream score vector (`None` = that stream's plan skipped
    /// scoring). A disconnected result queue means the worker died:
    /// recovery regenerates the missing replies (they land in `pending`)
    /// and the drain proceeds as if nothing happened.
    fn drain_tick(&mut self) -> Vec<Option<f32>> {
        debug_assert!(self.in_flight > 0, "drain_tick without a pushed tick");
        let mut scores = vec![None; self.assignment.len()];
        for idx in 0..self.shards.len() {
            let msg = loop {
                if let Some(msg) = self.shards[idx].pending.pop_front() {
                    break msg;
                }
                match self.shards[idx].results.recv() {
                    Ok(msg) => break msg,
                    Err(spsc::RecvError) => self.recover_shard(idx),
                }
            };
            match msg {
                FromShard::Tick { scores: shard_scores, counters, checkpoint } => {
                    let shard = &mut self.shards[idx];
                    assert_eq!(
                        shard_scores.len(),
                        shard.locals.len(),
                        "shard returned a partial tick"
                    );
                    for (local, score) in shard_scores.into_iter().enumerate() {
                        scores[shard.locals[local]] = score;
                    }
                    shard.counters = counters;
                    shard.acked += 1;
                    if let Some(cp) = checkpoint {
                        shard.absorb_checkpoint(*cp);
                    }
                }
                FromShard::Snapshot(_) => unreachable!("snapshot reply during tick drain"),
            }
        }
        self.in_flight -= 1;
        self.ticks += 1;
        scores
    }

    /// Supervises one dead shard back to life: respawn, restore, replay —
    /// retrying (bounded) if the fresh generation dies during replay.
    fn recover_shard(&mut self, idx: usize) {
        let started = std::time::Instant::now();
        let mut attempts = 0usize;
        let (replayed_ticks, replayed_frames, from_checkpoint) = loop {
            attempts += 1;
            assert!(
                attempts <= MAX_RECOVERY_ATTEMPTS,
                "shard {idx}: still dying after {MAX_RECOVERY_ATTEMPTS} respawns — \
                 the fault plan kills every generation"
            );
            if let Some(outcome) = self.try_recover(idx) {
                break outcome;
            }
        };
        self.recovery.recoveries += 1;
        self.recovery.replayed_ticks += replayed_ticks;
        self.recovery.replayed_frames += replayed_frames;
        self.recovery.max_replay_ticks = self.recovery.max_replay_ticks.max(replayed_ticks);
        if from_checkpoint {
            self.recovery.from_checkpoint += 1;
        }
        self.recovery.recovery_wall_nanos += started.elapsed().as_nanos() as u64;
    }

    /// One recovery attempt. Returns `Some((replayed_ticks, replayed_frames,
    /// from_checkpoint))` on success, `None` if the respawned worker died
    /// again mid-recovery (the caller retries with the next generation).
    fn try_recover(&mut self, idx: usize) -> Option<(usize, usize, bool)> {
        let spec = self.spec.clone();
        let config = self.config;
        let inner = self.inner_threads;
        let faults = self.faults.clone();
        let shard = &mut self.shards[idx];
        // Tear down the dead generation. Dropping the sender lets a worker
        // that is somehow still draining exit; join reaps the thread (a
        // panicked join is expected — that's how injected panics die).
        shard.commands = None;
        if let Some(thread) = shard.thread.take() {
            let _ = thread.join();
        }
        // Replies stranded in the dead generation's queue (or stashed by an
        // earlier recovery) are regenerated below, bit-identically.
        shard.pending.clear();
        shard.generation += 1;
        let (cmd_tx, res_rx, thread) =
            spawn_shard_worker(&spec, config, inner, idx, shard.generation, &faults);
        shard.commands = Some(cmd_tx);
        shard.results = res_rx;
        shard.thread = Some(thread);
        let tx = shard.commands.as_ref().expect("sender just installed");
        // Restore: newest checkpoint if one landed, else genesis
        // re-registration of every stream.
        let (base_tick, from_checkpoint) = match shard.ring.latest() {
            Some(cp) => {
                if tx.send(ToShard::Restore(Box::new(cp.clone()))).is_err() {
                    return None;
                }
                (cp.tick, true)
            }
            None => {
                for &(frame_seed, adapt) in &shard.stream_meta {
                    if tx.send(ToShard::AddStream { frame_seed, adapt }).is_err() {
                        return None;
                    }
                }
                (0, false)
            }
        };
        debug_assert!(
            shard.replay.front().map_or(shard.sent == base_tick, |rec| rec.seq == base_tick + 1),
            "replay buffer must start right after the restore point"
        );
        // Replay every recorded tick, harvesting replies as we go so the
        // result queue never fills: at most queue_depth sends are ever
        // outstanding, and the channels hold queue_depth + 1.
        let mut replies: Vec<FromShard> = Vec::with_capacity(shard.replay.len());
        let mut outstanding = 0usize;
        let mut replayed_frames = 0usize;
        for rec in &shard.replay {
            while outstanding >= config.queue_depth {
                match shard.results.recv() {
                    Ok(msg) => {
                        replies.push(msg);
                        outstanding -= 1;
                    }
                    Err(spsc::RecvError) => return None,
                }
            }
            replayed_frames += rec.frames.len();
            let msg = ToShard::Tick { frames: rec.frames.clone(), plans: rec.plans.clone() };
            if tx.send(msg).is_err() {
                return None;
            }
            outstanding += 1;
        }
        while outstanding > 0 {
            match shard.results.recv() {
                Ok(msg) => {
                    replies.push(msg);
                    outstanding -= 1;
                }
                Err(spsc::RecvError) => return None,
            }
        }
        let replayed_ticks = shard.replay.len();
        // The first (acked − base_tick) replies re-execute ticks the caller
        // already consumed: absorb their counters and checkpoints, discard
        // their scores (determinism makes them byte-copies of what the dead
        // worker already delivered). The rest are still owed to drain_tick.
        let discard = shard.acked - base_tick;
        for (i, msg) in replies.into_iter().enumerate() {
            if i < discard {
                match msg {
                    FromShard::Tick { counters, checkpoint, .. } => {
                        shard.counters = counters;
                        if let Some(cp) = checkpoint {
                            shard.absorb_checkpoint(*cp);
                        }
                    }
                    FromShard::Snapshot(_) => unreachable!("snapshot reply during replay"),
                }
            } else {
                shard.pending.push_back(msg);
            }
        }
        Some((replayed_ticks, replayed_frames, from_checkpoint))
    }

    /// Point-in-time state of every shard (workspace counters plus each
    /// stream's adapted table, event counts, and session workspace), taken
    /// on the worker threads. Only callable between ticks — `tick` and `run`
    /// always drain fully, so this never interleaves with tick replies.
    pub fn shard_snapshots(&mut self) -> Vec<ShardSnapshot> {
        debug_assert_eq!(self.in_flight, 0, "snapshot with ticks in flight");
        (0..self.shards.len())
            .map(|idx| loop {
                let sent = self.shards[idx]
                    .commands
                    .as_ref()
                    .expect("command sender live until drop")
                    .send(ToShard::Query)
                    .is_ok();
                if !sent {
                    self.recover_shard(idx);
                    continue;
                }
                match self.shards[idx].results.recv() {
                    Ok(FromShard::Snapshot(snap)) => break snap,
                    Ok(FromShard::Tick { .. }) => unreachable!("tick reply during snapshot"),
                    Err(spsc::RecvError) => self.recover_shard(idx),
                }
            })
            .collect()
    }

    /// Per-stream state snapshots indexed by [`StreamId`] (reassembled from
    /// [`ShardedRuntime::shard_snapshots`]).
    pub fn stream_snapshots(&mut self) -> Vec<StreamSnapshot> {
        let per_shard = self.shard_snapshots();
        let mut out: Vec<Option<StreamSnapshot>> = vec![None; self.sources.len()];
        for (shard, snap) in self.shards.iter().zip(per_shard) {
            for (local, stream) in snap.streams.into_iter().enumerate() {
                out[shard.locals[local]] = Some(stream);
            }
        }
        out.into_iter().map(|s| s.expect("stream missing from shard snapshot")).collect()
    }
}

impl<S: FrameSource> Drop for ShardedRuntime<S> {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            // Dropping the command sender is the shutdown signal; the worker
            // drains its queue and exits.
            shard.commands = None;
            if let Some(thread) = shard.thread.take() {
                // Don't double-panic during unwinding; worker panics already
                // surfaced as recv() failures while the runtime was live.
                let _ = thread.join();
            }
        }
    }
}

/// Everything a worker thread is configured with, bundled for spawning.
struct WorkerSetup {
    spec: EngineSpec,
    max_batch: usize,
    inner_threads: usize,
    /// This worker's shard index (fault-plan coordinate).
    shard_idx: usize,
    /// 0 at startup, +1 per respawn — fault plans are generation-aware.
    generation: usize,
    checkpoint_interval: usize,
    faults: FaultPlan,
}

/// Spawns one shard worker (generation-tagged) and returns its queue
/// endpoints and join handle. Used at construction and by recovery.
fn spawn_shard_worker(
    spec: &EngineSpec,
    config: ShardedConfig,
    inner_threads: usize,
    shard_idx: usize,
    generation: usize,
    faults: &FaultPlan,
) -> (spsc::Sender<ToShard>, spsc::Receiver<FromShard>, JoinHandle<()>) {
    // queue_depth ticks may be in flight, plus one slot of slack so a
    // control message never waits on a full tick pipeline.
    let (cmd_tx, cmd_rx) = spsc::channel::<ToShard>(config.queue_depth + 1);
    let (res_tx, res_rx) = spsc::channel::<FromShard>(config.queue_depth + 1);
    let setup = WorkerSetup {
        spec: spec.clone(),
        max_batch: config.max_batch,
        inner_threads,
        shard_idx,
        generation,
        checkpoint_interval: config.checkpoint_interval,
        faults: faults.clone(),
    };
    let thread = std::thread::spawn(move || shard_worker(setup, cmd_rx, res_tx));
    (cmd_tx, res_rx, thread)
}

/// The worker body: builds this shard's engine replica (under the inner
/// thread cap), then serves its streams through a private
/// [`MultiStreamRuntime`] fed by the command queue until the front-end
/// disconnects. Injected faults fire *before* a tick is processed, so a
/// killed worker loses that tick and everything queued behind it — all of
/// which the supervisor's replay buffer still holds.
fn shard_worker(
    setup: WorkerSetup,
    commands: spsc::Receiver<ToShard>,
    results: spsc::Sender<FromShard>,
) {
    // Cap this thread's kernel pool *before* the engine build so even
    // build-time matmuls obey the shards × threads rule.
    akg_tensor::par::set_thread_cap(setup.inner_threads);
    let engine = setup.spec.build();
    let mut rt: MultiStreamRuntime<TickFeed> = MultiStreamRuntime::new(
        engine,
        RuntimeConfig { max_batch: setup.max_batch, batched: true },
    );
    let mut feeds: Vec<FeedQueue> = Vec::new();
    // Worker-local 1-based tick counter; survives recovery because Restore
    // rewinds it to the checkpoint tick and replay re-advances it.
    let mut tick_no = 0usize;
    while let Ok(msg) = commands.recv() {
        match msg {
            ToShard::AddStream { frame_seed, adapt } => {
                let feed = Rc::new(RefCell::new(VecDeque::new()));
                feeds.push(Rc::clone(&feed));
                rt.add_stream(TickFeed(feed), frame_seed, adapt);
            }
            ToShard::Restore(cp) => {
                assert_eq!(rt.stream_count(), 0, "Restore into a non-empty worker");
                for stream_cp in &cp.streams {
                    let feed = Rc::new(RefCell::new(VecDeque::new()));
                    feeds.push(Rc::clone(&feed));
                    let local =
                        rt.add_stream(TickFeed(feed), stream_cp.frame_seed, stream_cp.adapt);
                    rt.restore_stream_state(local, stream_cp)
                        .expect("in-memory checkpoint restores cleanly");
                }
                rt.restore_counters(cp.counters);
                tick_no = cp.tick;
            }
            ToShard::Tick { frames, plans } => {
                tick_no += 1;
                match setup.faults.worker_crash(setup.shard_idx, tick_no, setup.generation) {
                    Some(CrashStyle::Exit) => return,
                    Some(CrashStyle::Panic) => {
                        panic!("injected worker panic (deterministic fault)")
                    }
                    None => {}
                }
                if let Some(millis) =
                    setup.faults.stall_millis(setup.shard_idx, tick_no, setup.generation)
                {
                    // A stall is not a failure: the bounded queues apply
                    // backpressure and no output bit changes.
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                assert_eq!(plans.len(), feeds.len(), "tick plans do not match shard streams");
                let mut frames = frames.into_iter();
                for (feed, plan) in feeds.iter().zip(&plans) {
                    let mut queue = feed.borrow_mut();
                    for _ in 0..plan.ingest {
                        queue.push_back(frames.next().expect("tick frames underran the plans"));
                    }
                }
                assert!(frames.next().is_none(), "tick frames overran the plans");
                // A shard with no streams still acknowledges the round so
                // the drain barrier stays uniform.
                let scores = if feeds.is_empty() { Vec::new() } else { rt.tick_with_plan(&plans) };
                let checkpoint = if tick_no.is_multiple_of(setup.checkpoint_interval)
                    && !feeds.is_empty()
                {
                    let streams =
                        (0..rt.stream_count()).map(|local| rt.checkpoint_stream(local)).collect();
                    Some(Box::new(ShardCheckpoint {
                        tick: tick_no,
                        counters: rt.counters(),
                        streams,
                    }))
                } else {
                    None
                };
                let reply = FromShard::Tick { scores, counters: rt.counters(), checkpoint };
                if results.send(reply).is_err() {
                    return; // front-end gone
                }
            }
            ToShard::Query => {
                let streams = (0..rt.stream_count())
                    .map(|local| {
                        let (token_updates, replacements) = rt.stream_event_totals(local);
                        StreamSnapshot {
                            table: rt.session(local).table.to_dense_vec(),
                            replacements,
                            token_updates,
                            workspace: rt.session(local).workspace_stats(),
                        }
                    })
                    .collect();
                let snap = ShardSnapshot { workspace: rt.workspace_stats(), streams };
                if results.send(FromShard::Snapshot(snap)).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSource;

    fn frame(salt: usize) -> Frame {
        let concepts = if salt.is_multiple_of(3) {
            vec![("walking".into(), 1.0)]
        } else {
            vec![("person".into(), 0.8), ("vehicle".into(), 0.4)]
        };
        Frame { concepts, label: None }
    }

    fn spec() -> EngineSpec {
        EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default())
    }

    fn counting_source(stream: usize) -> FnSource<impl FnMut() -> (Frame, bool)> {
        let mut k = 7 * stream;
        FnSource(move || {
            k += 1;
            (frame(k), false)
        })
    }

    #[test]
    fn engine_builds_are_bit_identical_replicas() {
        // The keystone of the shard-equivalence contract: two builds from
        // one spec must agree on every trained parameter.
        let spec = spec();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.table.param().to_vec(), b.table.param().to_vec(), "token tables diverged");
        assert_eq!(a.kgs.len(), b.kgs.len());
    }

    #[test]
    fn assignment_is_stable_round_robin() {
        let mut rt = ShardedRuntime::new(spec(), ShardedConfig::with_shards(3));
        for i in 0..7usize {
            let id = rt.add_stream(counting_source(i), i as u64, AdaptConfig::default());
            assert_eq!(id, i);
        }
        for i in 0..7 {
            assert_eq!(rt.shard_of(i), i % 3);
        }
        assert_eq!(rt.stream_count(), 7);
        assert_eq!(rt.shard_count(), 3);
    }

    #[test]
    fn counters_aggregate_across_shards() {
        let mut rt = ShardedRuntime::new(
            spec(),
            ShardedConfig {
                shards: 2,
                max_batch: 2,
                queue_depth: 2,
                inner_threads: Some(1),
                ..ShardedConfig::default()
            },
        );
        for i in 0..5usize {
            rt.add_stream(counting_source(i), i as u64, AdaptConfig::default());
        }
        let scores = rt.run(3);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| s.len() == 3));
        let c = rt.counters();
        assert_eq!(c.frames, 15);
        assert_eq!(c.ticks, 3);
        // shard 0 has 3 streams (⌈3/2⌉ = 2 dispatches), shard 1 has 2 (1)
        assert_eq!(c.dispatches, 9);
        assert_eq!(c.max_batch_seen, 2);
    }

    #[test]
    fn empty_shards_are_tolerated() {
        // 4 shards, 2 streams: two workers serve, two idle-acknowledge.
        let mut rt = ShardedRuntime::new(spec(), ShardedConfig::with_shards(4));
        for i in 0..2usize {
            rt.add_stream(counting_source(i), i as u64, AdaptConfig::default());
        }
        let scores = rt.tick();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert_eq!(rt.counters().frames, 2);
    }

    type EmptySource = FnSource<fn() -> (Frame, bool)>;

    #[test]
    #[should_panic(expected = "no streams registered")]
    fn tick_requires_streams() {
        let mut rt: ShardedRuntime<EmptySource> =
            ShardedRuntime::new(spec(), ShardedConfig::with_shards(1));
        let _ = rt.tick();
    }

    #[test]
    fn snapshots_cover_every_stream() {
        let mut rt = ShardedRuntime::new(spec(), ShardedConfig::with_shards(2));
        for i in 0..3usize {
            rt.add_stream(counting_source(i), i as u64, AdaptConfig::default());
        }
        let _ = rt.tick();
        let snaps = rt.stream_snapshots();
        assert_eq!(snaps.len(), 3);
        assert!(snaps.iter().all(|s| !s.table.is_empty()));
        let shard_snaps = rt.shard_snapshots();
        assert_eq!(shard_snaps.len(), 2);
        assert_eq!(shard_snaps.iter().map(|s| s.streams.len()).sum::<usize>(), 3);
    }

    #[test]
    #[should_panic(expected = "register every stream before the first tick")]
    fn add_stream_after_first_tick_is_rejected() {
        let mut rt = ShardedRuntime::new(spec(), ShardedConfig::with_shards(1));
        rt.add_stream(counting_source(0), 0, AdaptConfig::default());
        let _ = rt.tick();
        rt.add_stream(counting_source(1), 1, AdaptConfig::default());
    }

    #[test]
    fn dropping_with_dead_worker_during_unwind_does_not_abort() {
        // Regression shape for the drop path: the caller panics while a
        // worker has *also* panicked with a tick in flight. Drop must join
        // the dead thread without propagating its panic — a double panic
        // here would abort the process and no assertion could ever run.
        let caller = std::panic::catch_unwind(|| {
            let mut rt = ShardedRuntime::with_faults(
                spec(),
                ShardedConfig { shards: 1, inner_threads: Some(1), ..ShardedConfig::default() },
                FaultPlan::panic_at(0, 1),
            );
            for i in 0..2usize {
                rt.add_stream(counting_source(i), i as u64, AdaptConfig::default());
            }
            // Push without draining so the worker's injected panic happens
            // while the tick is still in flight, then unwind the caller.
            rt.push_tick();
            std::thread::sleep(std::time::Duration::from_millis(50));
            panic!("caller unwinds with a dead worker and an undrained tick");
        });
        // The caller's own panic surfaced; the process survived the drop.
        assert!(caller.is_err());
    }

    #[test]
    fn supervisor_restarts_worker_mid_run_pipelining() {
        // Kill a worker while run() has queue_depth ticks in flight: the
        // supervisor must recover mid-pipeline and the output must match a
        // fault-free run bit for bit.
        let config = ShardedConfig {
            shards: 2,
            queue_depth: 3,
            checkpoint_interval: 4,
            inner_threads: Some(1),
            ..ShardedConfig::default()
        };
        let run = |faults: FaultPlan| {
            let mut rt = ShardedRuntime::with_faults(spec(), config, faults);
            for i in 0..4usize {
                rt.add_stream(counting_source(i), i as u64, AdaptConfig::default());
            }
            let scores = rt.run(12);
            (scores, rt.counters(), rt.recovery_stats())
        };
        let (clean_scores, clean_counters, clean_recovery) = run(FaultPlan::none());
        assert_eq!(clean_recovery.recoveries, 0);
        let (scores, counters, recovery) = run(FaultPlan::crash_at(1, 6));
        assert_eq!(recovery.recoveries, 1, "the injected crash must trigger recovery");
        assert_eq!(recovery.from_checkpoint, 1, "a checkpoint landed at tick 4 < crash tick 6");
        assert!(recovery.max_replay_ticks >= 2, "ticks 5.. must replay");
        assert_eq!(scores, clean_scores, "recovered scores diverged from the fault-free run");
        assert_eq!(counters, clean_counters, "recovered counters diverged");
    }
}
