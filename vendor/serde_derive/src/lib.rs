//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on `proc_macro` token
//! streams (the build environment has no crates.io access, so `syn`/`quote`
//! are unavailable).
//!
//! Supported input shapes — exactly what this workspace uses:
//!
//! - structs with named fields (plus `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default`-filled on deserialize),
//! - tuple structs (newtypes serialize transparently, larger ones as arrays),
//! - unit structs,
//! - enums with unit, tuple, and struct variants, encoded externally tagged
//!   like upstream serde (`"Variant"` / `{"Variant": ...}`).
//!
//! Generics and other `#[serde(...)]` attributes are rejected with a
//! `compile_error!` rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct { arity: usize },
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

/// Derives the vendored `serde::Serialize` (lowering to `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` (rebuilding from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed).parse().expect("serde_derive: generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    fn peek_punct(&self) -> Option<char> {
        match self.peek() {
            Some(TokenTree::Punct(p)) => Some(p.as_char()),
            _ => None,
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("serde_derive: expected identifier, found {other:?}")),
        }
    }

    /// Skips a run of outer attributes, reporting whether any was
    /// `#[serde(skip)]`. Any other `#[serde(...)]` content is an error.
    fn skip_attrs(&mut self) -> Result<bool, String> {
        let mut skip = false;
        while self.peek_punct() == Some('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = Cursor::new(g.stream());
                if inner.peek_ident().as_deref() == Some("serde") {
                    inner.next();
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        let text = args.stream().to_string();
                        if text.trim() == "skip" {
                            skip = true;
                        } else {
                            return Err(format!(
                                "serde_derive: unsupported attribute #[serde({text})] \
                                 (vendored shim supports only #[serde(skip)])"
                            ));
                        }
                    }
                }
            } else {
                return Err("serde_derive: malformed attribute".to_string());
            }
        }
        Ok(skip)
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if self.peek_ident().as_deref() == Some("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consumes a type (or expression) up to a top-level `,`, tracking
    /// angle-bracket depth so `HashMap<K, V>` stays a single item.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                }
                if c == '>' {
                    angle_depth -= 1;
                }
            }
            self.next();
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs()?;
    cur.skip_visibility();
    let keyword = cur.expect_ident()?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("serde_derive: expected struct or enum, found `{other}`")),
    };
    let name = cur.expect_ident()?;
    if cur.peek_punct() == Some('<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored shim"
        ));
    }

    let kind = if is_enum {
        match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(Cursor::new(g.stream()))?)
            }
            _ => return Err(format!("serde_derive: expected enum body for `{name}`")),
        }
    } else {
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                Kind::NamedStruct(parse_named_fields(Cursor::new(g))?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                let (arity, any_skip) = parse_tuple_fields(Cursor::new(g))?;
                if any_skip {
                    return Err(format!(
                        "serde_derive: #[serde(skip)] on tuple-struct `{name}` fields is \
                         not supported"
                    ));
                }
                Kind::TupleStruct { arity }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            None => Kind::UnitStruct,
            other => return Err(format!("serde_derive: unexpected token {other:?} in `{name}`")),
        }
    };
    Ok(Input { name, kind })
}

fn parse_named_fields(mut cur: Cursor) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    while !cur.at_end() {
        let skip = cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident()?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!("serde_derive: expected `:` after `{name}`, found {other:?}"))
            }
        }
        cur.skip_until_top_level_comma();
        cur.next(); // the comma, if present
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_tuple_fields(mut cur: Cursor) -> Result<(usize, bool), String> {
    let mut arity = 0usize;
    let mut any_skip = false;
    while !cur.at_end() {
        any_skip |= cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        cur.skip_until_top_level_comma();
        cur.next();
        arity += 1;
    }
    Ok((arity, any_skip))
}

fn parse_variants(mut cur: Cursor) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident()?;
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.next();
                VariantShape::Struct(parse_named_fields(Cursor::new(g))?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                let (arity, any_skip) = parse_tuple_fields(Cursor::new(g))?;
                if any_skip {
                    return Err(format!(
                        "serde_derive: #[serde(skip)] in tuple variant `{name}` is not supported"
                    ));
                }
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        if cur.peek_punct() == Some('=') {
            // explicit discriminant — irrelevant to the external tagging
            cur.skip_until_top_level_comma();
        }
        if cur.peek_punct() == Some(',') {
            cur.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut out = String::from(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                out.push_str(&format!(
                    "entries.push((::std::string::String::from({fname:?}), \
                     ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            out.push_str("::serde::Value::Object(entries)");
            out
        }
        Kind::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct { arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::String(::std::string::String::from({vname:?})),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from({vname:?}), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({:?}), \
                                     ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from({vname:?}), \
                             ::serde::Value::Object(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// codegen: Deserialize
// ---------------------------------------------------------------------------

fn named_fields_ctor(path: &str, fields: &[Field], entries_var: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!(
                "{fname}: match ::serde::get_field({entries_var}, {fname:?}) {{\n\
                     ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                         ::serde::Error::custom(concat!(\"missing field `\", {fname:?}, \"` in {path}\"))),\n\
                 }},\n"
            ));
        }
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let ctor = named_fields_ctor(name, fields, "entries");
            format!(
                "let entries = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"{name}: expected object, found {{}}\", value.kind())))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Kind::TupleStruct { arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"{name}: expected array, found {{}}\", value.kind())))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"{name}: expected {arity} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"{name}::{vname}: expected array\"))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"{name}::{vname}: wrong tuple arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let ctor =
                            named_fields_ctor(&format!("{name}::{vname}"), fields, "entries");
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let entries = inner.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"{name}::{vname}: expected object\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"{name}: expected variant string or map, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
