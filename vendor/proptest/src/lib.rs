//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`Strategy`] implementations for numeric ranges,
//! tuples of strategies, a small regex-subset for `&str` literals, and
//! [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **no shrinking** — a failing case reports its inputs (via the assertion
//!   message) but is not minimized;
//! - **deterministic seeding** — cases derive from a fixed seed mixed with
//!   the case index, so CI runs are reproducible;
//! - `&str` strategies support the regex subset actually used in this
//!   workspace: concatenations of `[a-z]`-style classes, `.`, and literal
//!   characters, each with an optional `{m,n}` repetition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Error type carried by a failing property-test case.
pub type TestCaseError = String;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// ---------------------------------------------------------------------------
// string strategies (regex subset)
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// One atom of the supported regex subset.
enum Atom {
    /// `.` — an arbitrary printable char (plus occasional non-ASCII).
    Any,
    /// `[a-zXY]` — a char class of ranges and singletons.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

impl Atom {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Any => {
                // mostly printable ASCII, with some multibyte chars mixed in
                // so "never panics on arbitrary text" tests earn their name
                match rng.gen_range(0u32..20) {
                    0 => 'é',
                    1 => '✓',
                    2 => '字',
                    _ => char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap_or('x'),
                }
            }
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                let mut pick = rng.gen_range(0u32..total.max(1));
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).unwrap_or(*lo);
                    }
                    pick -= span;
                }
                ranges.first().map(|(lo, _)| *lo).unwrap_or('x')
            }
            Atom::Literal(c) => *c,
        }
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                let mut ranges = Vec::new();
                while let Some(class_char) = chars.next() {
                    if class_char == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') => {
                                // trailing literal dash, as in `[a-z-]`
                                ranges.push((class_char, class_char));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(hi) => ranges.push((class_char, hi)),
                            None => ranges.push((class_char, class_char)),
                        }
                    } else {
                        ranges.push((class_char, class_char));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        // optional {m,n} / {n} repetition
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for rep_char in chars.by_ref() {
                if rep_char == '}' {
                    break;
                }
                spec.push(rep_char);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().unwrap_or(0), hi.trim().parse().unwrap_or(8)),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1usize, 1usize)
        };
        let count = if min >= max { min } else { rng.gen_range(min..=max) };
        for _ in 0..count {
            out.push(atom.draw(rng));
        }
    }
    out
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Acceptable length arguments for [`vec`]: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `len` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `cases` iterations of a property body. Used by [`proptest!`]; not
/// public API upstream, public here so the macro can reach it.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    // deterministic but per-test seed: hash the test name
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case_index in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ ((case_index as u64) << 32));
        if let Err(msg) = case(&mut rng, case_index) {
            panic!("property {:?} failed at case {}/{}: {}", name, case_index, config.cases, msg);
        }
    }
}

/// The test-definition macro. Supports the upstream form used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0f32..1.0, 4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |rng, _case| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Fails the enclosing property case if the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Fails the enclosing property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_class_repetition() {
        let mut rng = crate::TestRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = crate::generate_from_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn pattern_any_repetition() {
        let mut rng = crate::TestRng::seed_from_u64(6);
        for _ in 0..100 {
            let s = crate::generate_from_pattern(".{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0i32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(v.iter().filter(|x| **x >= 100).count(), 0);
        }
    }
}
