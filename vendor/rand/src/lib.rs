//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the *exact API subset* it consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`, but a high-quality,
//! deterministic PRNG, which is all the workspace's synthetic-data and
//! initialization paths require.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type with a uniform-sampling rule over ranges, for [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. `high` must be strictly greater.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit = <$t as Standard>::sample(rng);
                let v = low + unit * (high - low);
                // rounding in `low + unit*(high-low)` can land exactly on the
                // excluded upper bound for very tight ranges; keep [low, high)
                if v >= high {
                    high.next_down().max(low)
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                // Floats: treat [low, high] as [low, high) plus the endpoint's
                // measure-zero chance; the distinction is immaterial here.
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // 64 bits suffice for every span the workspace uses (span <= u64::MAX + 1).
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-sampled type (`u32`, `u64`, `f32`,
    /// `f64`, `bool`; floats are uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Snapshots the generator's internal xoshiro256++ state so it can be
        /// persisted and later restored with [`StdRng::restore_state`] —
        /// continuing the exact random stream (used by deployment-state
        /// save/load, where a restored edge system must keep producing the
        /// same frame-embedding noise).
        pub fn export_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state snapshot taken with
        /// [`StdRng::export_state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256++ cannot leave (and
        /// which `export_state` can therefore never produce).
        pub fn restore_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "StdRng::restore_state: all-zero state is not reachable");
            StdRng { s }
        }

        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut s = [0u64; 4];
            for slot in &mut s {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // crude uniformity check
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn tight_float_range_stays_half_open() {
        let mut rng = StdRng::seed_from_u64(4);
        let low = 1.0f32;
        let high = f32::next_up(1.0);
        for _ in 0..1000 {
            let v = rng.gen_range(low..high);
            assert!(v >= low && v < high, "{v} not in [{low}, {high})");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
