//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework with the same *surface syntax* the code
//! uses — `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`, and
//! `serde_json::{to_string, from_str}` — backed by a much simpler data model:
//! every [`Serialize`] type lowers itself to a JSON [`Value`] tree, and every
//! [`Deserialize`] type rebuilds itself from one. The derive macros live in
//! the companion `serde_derive` vendor crate.
//!
//! Deliberate simplifications versus upstream serde:
//!
//! - one data format (JSON values), no zero-copy, no visitors;
//! - maps serialize through [`JsonKey`] string keys (integers and strings);
//! - enum encoding matches serde's *externally tagged* default: unit
//!   variants as `"Name"`, newtype/tuple/struct variants as
//!   `{"Name": ...}` — so round-trips are stable within the workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (covers the full `u64` and `i64` ranges).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field in an object's entry list (used by derived impls).
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value to a JSON [`Value`] tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::custom(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // non-finite floats serialize as null (JSON has no NaN)
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {}", value.kind()))
                })?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Map keys: JSON objects only admit string keys, so keyed collections
/// stringify through this trait (mirroring `serde_json`'s behavior for
/// integer-keyed maps).
pub trait JsonKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        // deterministic output regardless of hash order
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
    }
}

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(), Some(3));
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = HashMap::new();
        m.insert(7usize, vec![1u32, 2]);
        let v = m.to_value();
        let back: HashMap<usize, Vec<u32>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_round_trip() {
        let t = ("a".to_string(), 2u64);
        let back: (String, u64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
