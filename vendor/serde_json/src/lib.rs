//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! a compact JSON emitter and a recursive-descent parser over the vendored
//! `serde` crate's [`Value`] model. Provides exactly the two entry points the
//! workspace calls: [`to_string`] and [`from_str`].

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes `value` to a compact JSON string.
///
/// Mirrors `serde_json::to_string`'s signature (fallible), though the only
/// failure the vendored model can hit is a non-finite float, which is
/// emitted as `null` instead of erroring.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// emitter
// ---------------------------------------------------------------------------

fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if *f == f.trunc() && f.abs() < 1e15 {
                    // keep integral floats round-trippable as numbers
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(key, out);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(Error::custom("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // resynchronize on UTF-8 boundaries: walk back one byte and
                    // take the full char from the source
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tünïcødé \\ done".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_containers_round_trip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(usize, String)>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("3 true").is_err());
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }
}
