//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API its benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros (both the `name/config/targets` form and the simple list form).
//!
//! Measurement is deliberately simple: each benchmark runs a calibration
//! pass to pick an iteration count, then `sample_size` timed samples, and
//! prints min/mean/max per-iteration wall-clock. No outlier analysis,
//! plots, or baselines — enough to watch a hot path move, not to publish.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock per measured sample.
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, target_sample_time: Duration::from_millis(20) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 1,
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    sample_size: usize,
    target_sample_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, storing per-iteration nanoseconds samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // warm-up: the first invocations pay worker-thread spawns, page
        // faults on fresh buffers, and i-cache fill. Running them unmeasured
        // keeps that cost out of the samples *and* out of the calibration
        // below (a slow first call used to satisfy the target time at
        // iters = 1, locking small kernels into maximally noisy samples).
        for _ in 0..2 {
            std_black_box(routine());
        }
        // calibration: find an iteration count filling ~target_sample_time
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time || iters >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.target_sample_time.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        self.iters = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(nanos);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no measurement: Bencher::iter never called)");
            return;
        }
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<40} [{} {} {}]  ({} samples x {} iters)",
            format_nanos(min),
            format_nanos(mean),
            format_nanos(max),
            self.samples.len(),
            self.iters
        );
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms:
///
/// ```ignore
/// criterion_group!(name = group; config = Criterion::default(); targets = a, b);
/// criterion_group!(group, a, b);
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        // keep the calibration short for the test
        c.target_sample_time = Duration::from_micros(200);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn format_nanos_scales() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
    }
}
