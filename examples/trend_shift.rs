//! The paper's headline scenario (Fig. 5): the deployed detector faces an
//! anomaly-trend shift and adapts its knowledge graph on-device, while a
//! static-KG twin degrades.
//!
//! Run with: `cargo run --release --example trend_shift [weak|strong]`

use akg_core::experiment::{run_trend_shift, TrendShiftParams};
use akg_data::{DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;

fn main() {
    let scenario = std::env::args().nth(1).unwrap_or_else(|| "weak".to_string());
    let (initial, shifted) = match scenario.as_str() {
        "strong" => (AnomalyClass::Stealing, AnomalyClass::Explosion),
        _ => (AnomalyClass::Stealing, AnomalyClass::Robbery),
    };
    println!("trend-shift scenario: {initial} -> {shifted} ({scenario} shift)");
    println!(
        "concept overlap between classes: {:.3}\n",
        akg_kg::Ontology::new().concept_overlap(initial, shifted)
    );

    let seed = 43;
    let mut cfg = DatasetConfig::scaled(0.03).with_classes(&[initial, shifted]).with_seed(seed);
    cfg.test_normal = 25;
    cfg.test_anomalous = 30;
    let dataset = SyntheticUcfCrime::generate(cfg);
    let mut params = TrendShiftParams::quick(initial, shifted);
    params.seed = seed;
    params.system.seed = seed;
    params.train = params.train.with_seed(seed);

    let result = run_trend_shift(&dataset, &params);
    println!("initial (post-training) AUC: {:.3}\n", result.initial_auc);
    println!("step | with adaptation | static KG | trend");
    for (a, s) in result.adaptive.points.iter().zip(&result.static_kg.points) {
        println!(
            "  {:>2} |      {:.3}      |   {:.3}   | {}",
            a.step,
            a.auc,
            s.auc,
            if a.after_shift { shifted.name() } else { initial.name() }
        );
    }
    println!(
        "\npost-shift mean AUC: adaptive {:.3} vs static {:.3}",
        result.adaptive.post_shift_mean_auc(),
        result.static_kg.post_shift_mean_auc()
    );
    let last = result.adaptive.points.last().expect("points");
    println!("structural node replacements during adaptation: {}", last.replacements);
}
