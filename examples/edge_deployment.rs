//! Edge-deployment cost accounting (paper Table I): what it costs to keep a
//! deployed detector current via on-device KG adaptation, against the
//! cloud-regeneration baseline.
//!
//! Run with: `cargo run --release --example edge_deployment`

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_cost::{
    BaselineMeasurement, CloudBaseline, CostReport, EdgeDevice, EdgeMeasurement, KgDims, ModelDims,
};
use akg_kg::AnomalyClass;

fn main() {
    let system = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let d = system.cost_dims();
    let dims = ModelDims {
        kgs: d.kgs,
        kg: KgDims { nodes: d.nodes, edges: d.edges, levels: d.levels },
        embed_dim: d.embed_dim,
        gnn_dim: d.gnn_dim,
        window: d.window,
        temporal_inner: d.temporal_inner,
        heads: d.heads,
        temporal_layers: d.temporal_layers,
        classes: d.classes,
    };

    println!("deployed model dimensions:");
    println!("  {} KG(s), {} nodes, {} edges, {} levels", d.kgs, d.nodes, d.edges, d.levels);
    println!("  ~{} parameters", dims.param_count());
    println!("  inference: {} FLOPs per frame window", dims.inference_flops());

    let adapt = AdaptConfig::default();
    let batch = 3 * adapt.max_k;
    let per_day = dims.adaptation_step_flops(batch, d.token_table_entries);
    println!("  one daily adaptation loop: {per_day} FLOPs (batch {batch})");

    let device = EdgeDevice::default();
    println!(
        "  energy per adaptation: {:.4} J at {} pJ/FLOP",
        device.energy_joules(per_day),
        device.joules_per_flop * 1e12
    );

    let report = CostReport::build(
        &CloudBaseline::default(),
        &device,
        &BaselineMeasurement { average_auc: 0.93 },
        &EdgeMeasurement {
            adaptation_flops_per_day: per_day,
            adaptations_per_day: 1,
            average_auc: 0.91,
            adaptation_seconds: 0.0,
        },
    );
    println!("\n{}", report.render());
    println!("note: the AUC rows above use the paper's reported values; run");
    println!("`cargo run --release -p akg-bench --bin table1_cost` for the fully measured table.");
}
