//! Edge-deployment cost accounting (paper Table I): what it costs to keep a
//! deployed detector current via on-device KG adaptation, against the
//! cloud-regeneration baseline — plus a short multi-stream serving run
//! demonstrating the fixed-memory inference data plane (serve counters and
//! workspace high-water mark).
//!
//! Run with: `cargo run --release --example edge_deployment`

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_cost::{
    BaselineMeasurement, CloudBaseline, CostReport, EdgeDevice, EdgeMeasurement, KgDims, ModelDims,
};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{MultiStreamRuntime, RuntimeConfig};
use std::sync::Arc;

/// Runs a short batched multi-stream deployment and prints the serving
/// counters plus the inference workspace's allocation stats — the
/// fixed-memory story: the high-water mark is reached within the first few
/// ticks and never grows again.
fn serve_demo() {
    const STREAMS: usize = 4;
    const TICKS: usize = 64;
    let ds = Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.01).with_classes(&[AnomalyClass::Stealing]).with_seed(3),
    ));
    let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let precision = sys.engine.precision();
    let model_bytes = sys.engine.model_bytes();
    let mut rt = MultiStreamRuntime::new(sys.engine, RuntimeConfig::default());
    for s in 0..STREAMS {
        let source =
            AdaptationStream::owned(Arc::clone(&ds), AnomalyClass::Stealing, 0.3, 70 + s as u64);
        rt.add_stream(source, s as u64, AdaptConfig::default());
    }
    let _ = rt.run(TICKS / 2);
    let mid = rt.workspace_stats();
    let _ = rt.run(TICKS / 2);
    let end = rt.workspace_stats();

    let c = rt.counters();
    println!("\nserving demo ({STREAMS} streams, {TICKS} ticks, batched data plane):");
    println!("  engine: {model_bytes} model weight bytes served at {}", precision.name());
    println!(
        "  counters: {} frames | {} ticks | {} dispatches | max batch {} | {} token updates | {} \
         node replacements",
        c.frames, c.ticks, c.dispatches, c.max_batch_seen, c.token_updates, c.node_replacements
    );
    println!(
        "  workspace: {} buffers leased {} times | high-water {} KiB (mid-run {} KiB — fixed \
         footprint: {})",
        end.buffers_created,
        end.leases,
        end.high_water_bytes() / 1024,
        mid.high_water_bytes() / 1024,
        if end.high_water_bytes() == mid.high_water_bytes() { "yes" } else { "NO" }
    );
}

fn main() {
    let system = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let d = system.cost_dims();
    let dims = ModelDims {
        kgs: d.kgs,
        kg: KgDims { nodes: d.nodes, edges: d.edges, levels: d.levels },
        embed_dim: d.embed_dim,
        gnn_dim: d.gnn_dim,
        window: d.window,
        temporal_inner: d.temporal_inner,
        heads: d.heads,
        temporal_layers: d.temporal_layers,
        classes: d.classes,
    };

    println!("deployed model dimensions:");
    println!("  {} KG(s), {} nodes, {} edges, {} levels", d.kgs, d.nodes, d.edges, d.levels);
    println!("  ~{} parameters", dims.param_count());
    println!("  inference: {} FLOPs per frame window", dims.inference_flops());

    let adapt = AdaptConfig::default();
    let batch = 3 * adapt.max_k;
    let per_day = dims.adaptation_step_flops(batch, d.token_table_entries);
    println!("  one daily adaptation loop: {per_day} FLOPs (batch {batch})");

    let device = EdgeDevice::default();
    println!(
        "  energy per adaptation: {:.4} J at {} pJ/FLOP",
        device.energy_joules(per_day),
        device.joules_per_flop * 1e12
    );

    let report = CostReport::build(
        &CloudBaseline::default(),
        &device,
        &BaselineMeasurement { average_auc: 0.93 },
        &EdgeMeasurement {
            adaptation_flops_per_day: per_day,
            adaptations_per_day: 1,
            average_auc: 0.91,
            adaptation_seconds: 0.0,
            model_bytes_f32: system.engine.model.weight_matrix_bytes_f32(),
            model_bytes_int8: system.engine.model.weight_matrix_bytes_int8(),
        },
    );
    println!("\n{}", report.render());
    println!("note: the AUC rows above use the paper's reported values; run");
    println!("`cargo run --release -p akg-bench --bin table1_cost` for the fully measured table.");

    serve_demo();
}
