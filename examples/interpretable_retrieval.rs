//! Interpretable KG retrieval (paper Sec. III-E / Fig. 6): decode adapted
//! token embeddings back into human-readable words and watch a node drift
//! from the old mission's vocabulary toward the new one.
//!
//! Run with: `cargo run --release --example interpretable_retrieval`

use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_core::retrieval::InterpretableRetrieval;
use akg_embed::Similarity;
use akg_kg::AnomalyClass;

fn main() {
    let system = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let retrieval = InterpretableRetrieval::new(&system.engine.tokenizer, &system.engine.space);
    println!("reference vocabulary: {} decodable tokens\n", retrieval.len());

    // 1. Retrieval finds a concept's own word first.
    let sneaky = system.engine.space.word_vector("sneaky");
    println!("nearest words to the 'sneaky' embedding (Euclidean, as in the paper):");
    for hit in retrieval.nearest_words(&sneaky, 5, Similarity::Euclidean) {
        println!("  {:<12} closeness {:+.4}", hit.word, hit.closeness);
    }

    // 2. Emulate the Fig. 6 drift: interpolate a learned embedding from
    //    'sneaky' (Stealing) toward 'firearm' (Robbery) and decode it at
    //    each step — the retrieved word flips once the embedding crosses
    //    the midpoint, exactly the "Sneaky -> Firearm" transition the
    //    paper reports.
    let firearm = system.engine.space.word_vector("firearm");
    println!("\nembedding drift 'sneaky' -> 'firearm' (iterations of adaptation):");
    println!("  mix | dist(sneaky) | dist(firearm) | top word");
    for step in 0..=8 {
        let alpha = step as f32 / 8.0;
        let drifted: Vec<f32> =
            sneaky.iter().zip(&firearm).map(|(s, f)| (1.0 - alpha) * s + alpha * f).collect();
        let d_init = retrieval.distance_to_words(&drifted, &["sneaky"]);
        let d_target = retrieval.distance_to_words(&drifted, &["firearm"]);
        let top = retrieval.nearest_words(&drifted, 1, Similarity::Euclidean);
        println!(
            " {:.2} |    {:.4}    |    {:.4}     | {}",
            alpha,
            d_init,
            d_target,
            top.first().map(|h| h.word.as_str()).unwrap_or("-")
        );
    }

    // 3. Metric comparison (the paper tested dot product and cosine too).
    println!("\nmetric comparison for the halfway embedding:");
    let halfway: Vec<f32> = sneaky.iter().zip(&firearm).map(|(s, f)| 0.5 * s + 0.5 * f).collect();
    for metric in [Similarity::Euclidean, Similarity::Cosine, Similarity::Dot] {
        let words: Vec<String> =
            retrieval.nearest_words(&halfway, 3, metric).into_iter().map(|h| h.word).collect();
        println!("  {:?}: {}", metric, words.join(", "));
    }
}
