//! # adaptive-kg
//!
//! Facade crate of the `adaptive-kg` workspace: a Rust reproduction of
//! *"Continuous GNN-based Anomaly Detection on Edge using Efficient Adaptive
//! Knowledge Graph Learning"* (DATE 2025).
//!
//! Re-exports the member crates under stable names; see [`core`] for the
//! paper's contribution and the README for the experiment harness.

#![warn(missing_docs)]

pub use akg_core as core;
pub use akg_cost as cost;
pub use akg_data as data;
pub use akg_embed as embed;
pub use akg_eval as eval;
pub use akg_kg as kg;
pub use akg_runtime as runtime;
pub use akg_tensor as tensor;
